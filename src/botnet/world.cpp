#include "botnet/world.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "botnet/downloader.hpp"
#include "util/log.hpp"

namespace malnet::botnet {

std::string to_string(FeedSource s) {
  return s == FeedSource::kVirusTotal ? "VirusTotal" : "MalwareBazaar";
}

const std::vector<std::int64_t>& active_week_start_days() {
  // Appendix E: study weeks 1..31 map to calendar weeks 14, 24-33, 44-52 of
  // 2021 and 2-12 of 2022. Day 0 is Monday of 2021 calendar week 14.
  static const std::vector<std::int64_t> kDays = [] {
    std::vector<std::int64_t> days;
    days.push_back(0);                                            // week 14 '21
    for (int w = 24; w <= 33; ++w) days.push_back((w - 14) * 7);  // 24-33 '21
    for (int w = 44; w <= 52; ++w) days.push_back((w - 14) * 7);  // 44-52 '21
    for (int w = 2; w <= 12; ++w) days.push_back((w + 39) * 7);   // 2-12 '22
    return days;
  }();
  return kDays;
}

const std::vector<int>& weekly_sample_volume() {
  // Sums to 1447 (Table 1). Volumes grow "since January 2022" and peak at
  // study week 28 (§3.1).
  static const std::vector<int> kVolume{
      25, 28, 30, 26, 24, 27, 29, 25, 26, 28, 30,        // weeks 1-11
      30, 32, 35, 33, 31, 34, 36, 32, 35,                // weeks 12-20
      55, 60, 65, 70, 75, 80, 85, 120, 90, 76, 75};      // weeks 21-31
  return kVolume;
}

namespace {

const std::vector<net::Port>& c2_port_pool() {
  // The port universe with "past history of malicious activity" — this is
  // also where the probing study's Table 5 ports come from.
  static const std::vector<net::Port> kPorts{23,   6969, 3074, 666,  1312, 9506,
                                             81,   5555, 606,  1791, 1014, 6738,
                                             443,  42516};
  return kPorts;
}

constexpr const char* kTelemetryDomains[] = {
    "api.ip-echo.net", "update.fw-vendor.example", "time.cloudsync.example"};

std::string default_bot_id(proto::Family f, util::Rng& rng) {
  return proto::to_string(f) + ".mips." + std::to_string(rng.uniform(100, 999));
}

/// Near-even partition of `value` items across `shards`: shard `index`'s
/// share. Shares sum to `value` exactly; shards==1 returns `value`.
int shard_share(int value, int shards, int index) {
  const auto lo = static_cast<std::int64_t>(value) * index / shards;
  const auto hi = static_cast<std::int64_t>(value) * (index + 1) / shards;
  return static_cast<int>(hi - lo);
}

}  // namespace

World::World(sim::Network& net, WorldConfig cfg)
    : net_(net),
      cfg_(cfg),
      registry_(cfg.profiles != nullptr ? cfg.profiles
                                        : &profile::Registry::builtin()),
      asdb_(asdb::AsDatabase::standard()) {
  if (cfg_.total_samples <= 0) throw std::invalid_argument("World: no samples");
  if (cfg_.family_weights.size() != proto::kFamilyCount) {
    throw std::invalid_argument("World: family_weights size mismatch");
  }
  if (cfg_.shard_count < 1 || cfg_.shard_index < 0 ||
      cfg_.shard_index >= cfg_.shard_count) {
    throw std::invalid_argument("World: bad shard_count/shard_index");
  }
  if (!cfg_.variant_name.empty()) {
    variant_ = registry_->by_name(cfg_.variant_name);
    if (variant_ == nullptr) {
      throw std::invalid_argument("World: unknown variant profile '" +
                                  cfg_.variant_name + "'");
    }
    if (variant_->framing == profile::Framing::kP2p) {
      throw std::invalid_argument("World: variant profile must be centralised");
    }
    if (cfg_.variant_fraction < 0.0 || cfg_.variant_fraction > 1.0) {
      throw std::invalid_argument("World: variant_fraction out of [0,1]");
    }
  }
  util::Rng rng(cfg_.seed, util::fnv1a64("world"));

  // Public recursive resolver every sample uses.
  resolver_ = std::make_unique<dns::DnsServer>(net_, net::Ipv4{1, 1, 1, 1}, "resolver");

  auto c2_rng = rng.fork("c2s");
  plan_c2_population(c2_rng);
  auto attack_rng = rng.fork("attacks");
  plan_attacks(attack_rng);
  auto sample_rng = rng.fork("samples");
  plan_samples(sample_rng);

  // The dedicated (non-C2) downloader boxes persist for the whole study.
  for (const auto ip : dedicated_downloaders_) {
    dl_hosts_.push_back(std::make_unique<DownloaderServer>(net_, ip));
  }

  // Benign telemetry services some samples beacon to (IP-echo / update
  // checks) — the false-positive pressure on the C2 classifier.
  {
    util::Rng trng = rng.fork("telemetry");
    for (const auto* name : kTelemetryDomains) {
      const auto& all = asdb_.all();
      const auto& as = all[static_cast<std::size_t>(trng.uniform(0, all.size() - 1))];
      const auto ip = asdb_.random_ip_in(as.asn, trng);
      telemetry_hosts_.push_back(std::make_unique<inetsim::FakeHttp>(net_, ip));
      resolver_->add_record(name, ip);
    }
  }

  // Register DNS records for domain-fronted C2s (names resolve even when
  // the server behind them is down, as in the wild).
  for (const auto& c2 : c2s_) {
    if (c2.cfg.domain) resolver_->add_record(*c2.cfg.domain, c2.cfg.ip);
  }

  // Birth ordering for lifecycle driving.
  birth_order_.resize(c2s_.size());
  for (std::size_t i = 0; i < c2s_.size(); ++i) birth_order_[i] = i;
  std::sort(birth_order_.begin(), birth_order_.end(),
            [this](std::size_t a, std::size_t b) {
              return c2s_[a].birth_day < c2s_[b].birth_day;
            });
}

World::~World() = default;

net::Endpoint World::resolver() const { return {net::Ipv4{1, 1, 1, 1}, 53}; }

void World::plan_c2_population(util::Rng& rng) {
  const auto& weeks = active_week_start_days();
  const auto& volume = weekly_sample_volume();

  // Top-10 AS shares sum to 0.697 (§3.1); the long tail shares the rest.
  const auto& top10 = asdb::AsDatabase::table2_asns();
  const std::vector<double> top10_share{0.12,  0.047, 0.11, 0.07, 0.05,
                                        0.06,  0.09,  0.055, 0.035, 0.06};

  // C2 births per week track sample volume; roughly 0.8 C2 per sample slot
  // (sharing brings distinct addresses below sample count). Birth slots are
  // numbered across the whole study; a shard materializes only its
  // interleaved share.
  int birth_slot = 0;
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    const int births = std::max(1, static_cast<int>(volume[w] * 1.08));
    for (int b = 0; b < births; ++b) {
      const int slot = birth_slot++;
      if (slot % cfg_.shard_count != cfg_.shard_index) continue;
      PlannedC2 c2;
      c2.birth_day = weeks[w] + static_cast<std::int64_t>(rng.uniform(0, 6));

      // Family: centralised families only, renormalised.
      std::vector<double> fw;
      std::vector<proto::Family> fams;
      for (int f = 0; f < proto::kFamilyCount; ++f) {
        const auto fam = static_cast<proto::Family>(f);
        if (!proto::is_p2p(fam)) {
          fams.push_back(fam);
          fw.push_back(cfg_.family_weights[static_cast<std::size_t>(f)]);
        }
      }
      c2.cfg.family = fams[rng.weighted(std::span<const double>(fw))];
      c2.cfg.profile = registry_->active(c2.cfg.family);
      // Variant routing: only rolls the coin when a variant is configured,
      // so baseline plans draw the same RNG sequence with or without
      // loaded profiles.
      if (variant_ != nullptr && variant_->id == c2.cfg.family &&
          rng.chance(cfg_.variant_fraction)) {
        c2.cfg.profile = variant_;
      }

      // AS and address. Weeks 28+ see the AS-44812 / AS-139884 surge (§3.1).
      std::vector<double> as_w = top10_share;
      if (w + 1 >= 28) {
        as_w[7] *= 3.0;   // IP SERVER LLC (44812)
        as_w[8] *= 2.5;   // Apeiron Global (139884)
      }
      double top_total = 0;
      for (double x : as_w) top_total += x;
      if (rng.uniform01() < top_total / (top_total + 0.303)) {
        c2.asn = top10[rng.weighted(std::span<const double>(as_w))];
      } else {
        // Long tail: everything that is not in the top 10.
        const auto& all = asdb_.all();
        while (true) {
          const auto& pick = all[static_cast<std::size_t>(rng.uniform(0, all.size() - 1))];
          if (std::find(top10.begin(), top10.end(), pick.asn) == top10.end()) {
            c2.asn = pick.asn;
            break;
          }
        }
      }
      // Distinct address per C2.
      net::Ipv4 ip;
      do {
        ip = asdb_.random_ip_in(c2.asn, rng);
      } while (c2_index_.count(net::to_string(ip)) > 0);
      c2.cfg.ip = ip;
      c2.cfg.port = rng.chance(0.5)
                        ? net::Port{23}
                        : rng.pick(c2_port_pool());

      // DNS-fronted minority. The global birth slot keys the name so sibling
      // shards can never mint the same domain (equals c2s_.size() when
      // unsharded).
      if (rng.chance(cfg_.dns_c2_fraction)) {
        c2.cfg.domain = "cnc" + std::to_string(slot) + ".bot-net" +
                        std::to_string(rng.uniform(0, 99)) + ".com";
        c2.address = *c2.cfg.domain;
      } else {
        c2.address = net::to_string(ip);
      }

      // Lifetime mixture (drives Figures 2/3 and the 60% dead-on-arrival).
      const double roll = rng.uniform01();
      if (roll < cfg_.lifetime_one_day) {
        c2.lifetime_days = 1;
      } else if (roll < cfg_.lifetime_one_day + cfg_.lifetime_short) {
        c2.lifetime_days = static_cast<int>(rng.uniform(2, 3));
      } else if (roll < cfg_.lifetime_one_day + cfg_.lifetime_short + cfg_.lifetime_mid) {
        c2.lifetime_days = static_cast<int>(rng.uniform(4, 12));
      } else {
        c2.lifetime_days = static_cast<int>(rng.uniform(20, 48));
      }

      c2.cfg.accept_prob = cfg_.accept_prob;
      c2.cfg.mean_dormancy = cfg_.mean_dormancy;

      c2_index_[c2.address] = c2s_.size();
      // Domain-fronted C2s are *also* reachable (and potentially observed)
      // by IP; index both keys to the same plan entry.
      if (c2.cfg.domain) c2_index_[net::to_string(ip)] = c2s_.size();
      c2s_.push_back(std::move(c2));
    }
  }
}

void World::plan_attacks(util::Rng& rng) {
  // §5: 42 commands from 17 C2s across Mirai (2 variants), Gafgyt (2) and
  // Daddyl33t (2). Attack-issuing servers live ~10 days (vs ~4 overall).
  struct Quota {
    proto::Family family;
    int c2s;
  };
  // Each shard fields its near-even share of the attacker fleet. Per-family
  // quotas come from the active profiles (builtin: Mirai 8, Gafgyt 3,
  // Daddyl33t 6 — the paper's 17-server fleet).
  std::vector<Quota> quotas;
  int fleet = 0;
  for (std::size_t fi = 0; fi < proto::kFamilyCount; ++fi) {
    const auto family = static_cast<proto::Family>(fi);
    const int want = registry_->active(family)->attacker_quota;
    if (want <= 0) continue;
    fleet += want;
    quotas.push_back({family, shard_share(want, cfg_.shard_count, cfg_.shard_index)});
  }

  // Victim pool per §5.3: ISPs 45%, hosting 36%, business the rest; VSE and
  // NFO go to gaming infrastructure.
  std::vector<std::uint32_t> isp_as, hosting_as, business_as, gaming_as;
  std::uint32_t nfo_as = 0;
  for (const auto& a : asdb_.all()) {
    if (a.asn >= 64512) continue;  // keep victims in the named population
    if (a.gaming) gaming_as.push_back(a.asn);
    if (a.name == "NFOservers") nfo_as = a.asn;
    switch (a.type) {
      case asdb::AsType::kIsp: isp_as.push_back(a.asn); break;
      case asdb::AsType::kHosting: hosting_as.push_back(a.asn); break;
      case asdb::AsType::kBusiness: business_as.push_back(a.asn); break;
    }
  }

  auto pick_target = [&](proto::AttackType type) -> net::Endpoint {
    std::uint32_t asn;
    if (type == proto::AttackType::kNfo) {
      asn = nfo_as;
    } else if (type == proto::AttackType::kVse) {
      asn = gaming_as[static_cast<std::size_t>(rng.uniform(0, gaming_as.size() - 1))];
    } else {
      const std::size_t bucket = rng.weighted({0.45, 0.36, 0.19});
      const auto& pool = bucket == 0 ? isp_as : bucket == 1 ? hosting_as : business_as;
      asn = pool[static_cast<std::size_t>(rng.uniform(0, pool.size() - 1))];
    }
    net::Port port;
    if (type == proto::AttackType::kBlacknurse) {
      port = 0;  // ICMP
    } else if (type == proto::AttackType::kNfo) {
      port = 238;  // §5.1: custom payload against UDP/238
    } else if (type == proto::AttackType::kVse) {
      port = 27015;  // Source engine query port
    } else {
      const std::size_t r = rng.weighted({0.21, 0.07, 0.72});
      port = r == 0 ? net::Port{80}
             : r == 1 ? net::Port{443}
                      : static_cast<net::Port>(rng.uniform(1024, 50000));
    }
    return {asdb_.random_ip_in(asn, rng), port};
  };

  // `made` drives the time-spread stride and the 3-vs-2 command plan size;
  // start it at this shard's global fleet offset so the merged command
  // total stays close to the unsharded study's (~42).
  int made = static_cast<int>(static_cast<long long>(fleet) * cfg_.shard_index /
                              cfg_.shard_count);
  for (const auto& quota : quotas) {
    int assigned = 0;
    // Spread attacker C2s across the study; pick matching-family C2s.
    for (std::size_t i = 0; i < c2s_.size() && assigned < quota.c2s; ++i) {
      // Stride deterministically through the population for time spread.
      const std::size_t idx = (i * 37 + static_cast<std::size_t>(made) * 101) % c2s_.size();
      PlannedC2& c2 = c2s_[idx];
      if (c2.attacker || c2.cfg.family != quota.family) continue;
      // The server's own profile (possibly a variant) dictates its command
      // vocabulary; a profile with no attack encoding cannot be an attacker.
      const auto types = c2.cfg.profile->command_types();
      if (types.empty()) continue;
      c2.attacker = true;
      c2.lifetime_days = static_cast<int>(rng.uniform(10, 16));  // ~10 d (§5)
      c2.cfg.accept_prob = 0.98;
      c2.cfg.mean_dormancy = sim::Duration::minutes(30);

      // Plan 2 commands (a couple of servers get 3 so the yearly total
      // lands near the paper's 42 across ~20 observed sessions).
      const int plan_size = (made < 10) ? 3 : 2;
      net::Endpoint shared_target{};  // 25% of targets hit by two types
      const bool reuse_target = rng.chance(0.5);
      for (int k = 0; k < plan_size; ++k) {
        proto::AttackType type =
            types[static_cast<std::size_t>(rng.uniform(0, types.size() - 1))];
        if (k == 1 && type == c2.cfg.attack_plan[0].type && types.size() > 1) {
          // Avoid trivially duplicated commands in one plan.
          type = types[(static_cast<std::size_t>(rng.uniform(0, types.size() - 1)) + 1) %
                       types.size()];
        }
        proto::AttackCommand cmd;
        cmd.family = quota.family;
        cmd.type = type;
        cmd.duration_s = static_cast<std::uint32_t>(rng.uniform(20, 60));
        if (k == 1 && reuse_target && type != proto::AttackType::kNfo &&
            type != proto::AttackType::kBlacknurse) {
          cmd.target = shared_target;  // same victim, second attack type
        } else {
          cmd.target = pick_target(type);
        }
        if (k == 0) shared_target = cmd.target;
        c2.cfg.attack_plan.push_back(std::move(cmd));
      }
      ++assigned;
      ++made;
    }
  }
}

void World::plan_samples(util::Rng& rng) {
  const auto& vdb = vulndb::VulnDatabase::instance();
  const auto vulns = vdb.all();
  std::vector<double> vuln_w;
  vuln_w.reserve(vulns.size());
  for (const auto& v : vulns) vuln_w.push_back(v.corpus_weight);

  // Figure 8's temporal shape: the heavy vulnerabilities are used all year;
  // the rare ones appear in short campaign bursts. Each low-volume
  // vulnerability gets one ~6-week window anchored on an active study week
  // at or after its disclosure (CVE-2021-45382 cannot burst in July 2021).
  std::vector<std::pair<std::int64_t, std::int64_t>> vuln_window(vulns.size(),
                                                                 {0, 1'000'000});
  for (std::size_t vi = 0; vi < vulns.size(); ++vi) {
    if (vulns[vi].paper_samples > 10) continue;  // persistent usage
    const std::int64_t published = vulns[vi].publication_study_day();
    const auto& week_starts = active_week_start_days();
    std::vector<std::int64_t> eligible;
    for (const auto day : week_starts) {
      if (day >= published) eligible.push_back(day);
    }
    const std::int64_t start =
        eligible.empty() ? week_starts.back()
                         : eligible[static_cast<std::size_t>(
                               rng.uniform(0, eligible.size() - 1))];
    vuln_window[vi] = {start, start + 42};
  }

  // Dedicated (non-C2) downloader pool — the minority of §3.1 — split
  // across shards (floor of one so the fallback pick below never starves).
  const int dl_pool =
      std::max(1, shard_share(8, cfg_.shard_count, cfg_.shard_index));
  std::vector<net::Ipv4> dedicated_dl;
  for (int i = 0; i < dl_pool; ++i) {
    const auto& all = asdb_.all();
    const auto& as = all[static_cast<std::size_t>(rng.uniform(0, all.size() - 1))];
    dedicated_dl.push_back(asdb_.random_ip_in(as.asn, rng));
  }
  dedicated_downloaders_ = dedicated_dl;

  // Group C2 indices by birth week so samples reference *recent* servers.
  const auto& weeks = active_week_start_days();
  const auto& volume = weekly_sample_volume();
  std::vector<std::vector<std::size_t>> c2_by_week(weeks.size());
  for (std::size_t i = 0; i < c2s_.size(); ++i) {
    for (std::size_t w = 0; w < weeks.size(); ++w) {
      if (c2s_[i].birth_day >= weeks[w] && c2s_[i].birth_day < weeks[w] + 7) {
        c2_by_week[w].push_back(i);
        break;
      }
    }
  }
  // Longest-lived campaigns distribute the most binaries: order each weekly
  // cohort by lifetime so the Zipf head lands on them. This is what makes
  // multi-day observed lifespans (Figure 2's tail) possible at all.
  for (auto& cohort : c2_by_week) {
    std::sort(cohort.begin(), cohort.end(), [this](std::size_t a, std::size_t b) {
      return c2s_[a].lifetime_days > c2s_[b].lifetime_days;
    });
  }
  // Dedicated-C2 cursor: round-robin from the cohort tail (the short-lived
  // majority), so singleton servers skew short-lived as in Figure 2.
  std::vector<std::size_t> next_unused_in_cohort(weeks.size());
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    next_unused_in_cohort[w] = c2_by_week[w].size() / 3;  // skip the Zipf head
  }

  // Attacker-C2 samples are pinned to their server's birth week so every
  // attack plan gets a fresh, live session (target ~20 samples over the
  // 17-server fleet, §5). A few attackers serve two samples.
  std::map<std::size_t, std::vector<std::size_t>> attacker_by_week;  // week -> c2 idx
  {
    std::vector<std::size_t> attacker_idx;
    for (std::size_t i = 0; i < c2s_.size(); ++i) {
      if (c2s_[i].attacker) attacker_idx.push_back(i);
    }
    int budget = shard_share(cfg_.attacker_sample_count, cfg_.shard_count,
                             cfg_.shard_index);
    for (std::size_t k = 0; k < attacker_idx.size() && budget > 0; ++k, --budget) {
      const std::size_t idx = attacker_idx[k];
      for (std::size_t w = 0; w < weeks.size(); ++w) {
        if (c2s_[idx].birth_day >= weeks[w] && c2s_[idx].birth_day < weeks[w] + 7) {
          attacker_by_week[w].push_back(idx);
          break;
        }
      }
    }
    // Remaining budget: second samples for the earliest attackers, one day
    // after birth (still within their 8-14 day lifetime).
    std::size_t k = 0;
    while (budget > 0 && k < attacker_idx.size()) {
      const std::size_t idx = attacker_idx[k++];
      for (std::size_t w = 0; w < weeks.size(); ++w) {
        if (c2s_[idx].birth_day >= weeks[w] && c2s_[idx].birth_day < weeks[w] + 7) {
          attacker_by_week[w].push_back(idx);
          --budget;
          break;
        }
      }
    }
  }

  std::set<std::size_t> attacker_seen;
  std::vector<std::string> recent_downloaders;
  // `total` counts the *study-wide* sample slots so every shard walks the
  // same weekly layout; this shard only materializes its interleaved share.
  int total = 0;
  for (std::size_t w = 0; w < weeks.size() && total < cfg_.total_samples; ++w) {
    for (int s = 0; s < volume[w] && total < cfg_.total_samples; ++s, ++total) {
      if (total % cfg_.shard_count != cfg_.shard_index) continue;
      PlannedSample sample;
      // P2P share first; centralised samples inherit the family of the C2
      // they are built for (a Gafgyt binary talks to a Gafgyt server).
      const double p2p_share =
          cfg_.family_weights[static_cast<std::size_t>(proto::Family::kMozi)] +
          cfg_.family_weights[static_cast<std::size_t>(proto::Family::kHajime)];
      proto::Family family;
      if (rng.chance(p2p_share)) {
        const double mozi_w =
            cfg_.family_weights[static_cast<std::size_t>(proto::Family::kMozi)];
        family = rng.chance(mozi_w / p2p_share) ? proto::Family::kMozi
                                                : proto::Family::kHajime;
      } else {
        family = proto::Family::kMirai;  // provisional; overwritten below
      }

      const PlannedC2* primary = nullptr;
      const PlannedC2* fallback = nullptr;
      std::vector<const PlannedC2*> extras;
      std::int64_t ref_day = weeks[w] + static_cast<std::int64_t>(rng.uniform(0, 6));

      if (!proto::is_p2p(family)) {
        // Attacker-referencing samples are injected first in each week.
        std::size_t c2_idx = SIZE_MAX;
        auto& week_attackers = attacker_by_week[w];
        if (!week_attackers.empty()) {
          c2_idx = week_attackers.back();
          week_attackers.pop_back();
        }
        if (c2_idx == SIZE_MAX) {
          const auto& cohort = !c2_by_week[w].empty()
                                   ? c2_by_week[w]
                                   : c2_by_week[w == 0 ? 0 : w - 1];
          if (cohort.empty()) continue;  // no C2 cohort: skip slot
          if (rng.chance(cfg_.dedicated_c2_fraction) &&
              next_unused_in_cohort[w] < cohort.size()) {
            // A fresh, dedicated server: drives Figure 5's singleton mass.
            c2_idx = cohort[next_unused_in_cohort[w]++];
          } else {
            // Shared infrastructure: Zipf over the cohort (longest-lived
            // campaigns first).
            const auto rank = rng.zipf(cohort.size(), cfg_.zipf_share_exponent);
            c2_idx = cohort[static_cast<std::size_t>(rank - 1)];
          }
        }
        primary = &c2s_[c2_idx];
        family = primary->cfg.family;
        // Samples surface with a reporting lag after the server goes up;
        // long-lived campaigns also keep releasing fresh binaries while the
        // server stays alive.
        auto lag = static_cast<std::int64_t>(rng.geometric(cfg_.report_lag_p));
        if (primary->lifetime_days >= 3 && rng.chance(0.7)) {
          lag = static_cast<std::int64_t>(
              rng.uniform(0, static_cast<std::uint64_t>(primary->lifetime_days - 1)));
        }
        ref_day = primary->birth_day + std::min<std::int64_t>(lag, 30);
        if (primary->attacker) {
          // First sample lands on birth day; later ones spread across the
          // attacker's long lifetime (what makes their observed lifespan
          // ~10 days, §5).
          if (attacker_seen.insert(c2_idx).second) {
            ref_day = primary->birth_day;
          } else {
            ref_day = primary->birth_day +
                      static_cast<std::int64_t>(rng.uniform(
                          1, static_cast<std::uint64_t>(primary->lifetime_days - 2)));
          }
        }

        if (rng.chance(cfg_.fallback_ref_prob) && !c2_by_week[w].empty()) {
          // Fallback must speak the same dialect: same profile, IP-only.
          for (int attempt = 0; attempt < 16 && fallback == nullptr; ++attempt) {
            const auto rank = rng.zipf(c2_by_week[w].size(), cfg_.zipf_share_exponent);
            const auto* cand = &c2s_[c2_by_week[w][static_cast<std::size_t>(rank - 1)]];
            if (cand != primary && !cand->cfg.domain &&
                cand->cfg.profile == primary->cfg.profile) {
              fallback = cand;
            }
          }
        }

        // Profiles with `fallback.extra` > 0 embed additional failover
        // servers beyond the classic single fallback. Builtin profiles
        // declare none, so baseline plans draw nothing here.
        const int want_extra = primary->cfg.profile->extra_fallbacks;
        if (want_extra > 0 && !c2_by_week[w].empty()) {
          for (int e = 0; e < want_extra; ++e) {
            for (int attempt = 0; attempt < 16; ++attempt) {
              const auto rank = rng.zipf(c2_by_week[w].size(), cfg_.zipf_share_exponent);
              const auto* cand = &c2s_[c2_by_week[w][static_cast<std::size_t>(rank - 1)]];
              if (cand == primary || cand == fallback || cand->cfg.domain ||
                  cand->cfg.profile != primary->cfg.profile) {
                continue;
              }
              if (std::find(extras.begin(), extras.end(), cand) != extras.end()) {
                continue;
              }
              extras.push_back(cand);
              break;
            }
          }
        }
      }

      sample.truth_family = family;
      const profile::FamilyProfile* sprof =
          primary != nullptr && primary->cfg.profile != nullptr
              ? primary->cfg.profile
              : registry_->active(family);
      auto spec = make_spec(rng, family, primary, fallback);
      for (const auto* e : extras) {
        spec.extra_c2.push_back({e->cfg.ip, e->cfg.port});
      }
      if (primary != nullptr && primary->attacker) spec.anti_sandbox = false;

      // Exploit-carrying minority (D-Exploits, Table 4, Figures 8/9).
      if (rng.chance(cfg_.exploit_sample_fraction)) {
        const int n_tasks = static_cast<int>(
            rng.uniform(static_cast<std::uint64_t>(cfg_.exploit_tasks_min),
                        static_cast<std::uint64_t>(cfg_.exploit_tasks_max)));
        // Day-conditional weights: rare exploits ship only inside their
        // burst window, boosted so their yearly totals still match Table 4.
        std::vector<double> day_w(vulns.size());
        for (std::size_t vi = 0; vi < vulns.size(); ++vi) {
          const bool in_window = ref_day >= vuln_window[vi].first &&
                                 ref_day <= vuln_window[vi].second;
          const bool bursty = vulns[vi].paper_samples <= 10;
          day_w[vi] = !bursty ? vuln_w[vi]
                      : in_window ? vuln_w[vi] * (365.0 / 42.0)
                                  : 0.0;
        }
        std::vector<vulndb::VulnId> chosen;
        for (int k = 0; k < n_tasks; ++k) {
          const auto vi = rng.weighted(std::span<const double>(day_w));
          const auto& v = vulns[vi];
          if (std::find(chosen.begin(), chosen.end(), v.id) != chosen.end()) continue;
          chosen.push_back(v.id);
          mal::ScanTask task;
          task.port = v.port;
          task.vuln = v.id;
          task.target_count = static_cast<std::uint32_t>(rng.uniform(40, 80));
          task.pps = 5.0 + rng.uniform01() * 15.0;
          spec.scans.push_back(task);
        }
        // Loader choice with exploit affinity (Figure 9).
        const auto& loaders = vdb.loaders();
        std::string loader;
        for (const auto& l : loaders) {
          if (l.affinity &&
              std::find(chosen.begin(), chosen.end(), *l.affinity) != chosen.end() &&
              rng.chance(0.8)) {
            loader = l.name;
            break;
          }
        }
        if (loader.empty()) {
          std::vector<double> lw;
          for (const auto& l : loaders) lw.push_back(l.weight);
          loader = loaders[rng.weighted(std::span<const double>(lw))].name;
        }
        spec.loader_name = loader;
        // Downloader: campaigns reuse a small set of loader servers, most
        // co-hosted on C2 boxes (§3.1: 47 distinct, only 12 not C2s).
        if (!recent_downloaders.empty() && rng.chance(0.78)) {
          spec.downloader_host = rng.pick(recent_downloaders);
        } else if (primary != nullptr && rng.chance(cfg_.downloader_on_c2_prob)) {
          spec.downloader_host = net::to_string(primary->cfg.ip);
          const_cast<PlannedC2*>(primary)->downloader = true;
          recent_downloaders.push_back(spec.downloader_host);
        } else {
          spec.downloader_host = net::to_string(rng.pick(dedicated_dl));
          recent_downloaders.push_back(spec.downloader_host);
        }
        if (recent_downloaders.size() > 8) {
          recent_downloaders.erase(recent_downloaders.begin());
        }
      }

      // Telnet credential sweep for the majority (classic Mirai behaviour).
      if (rng.chance(0.6)) {
        mal::ScanTask telnet;
        telnet.port = 23;
        telnet.target_count = static_cast<std::uint32_t>(rng.uniform(30, 60));
        telnet.pps = 3.0 + rng.uniform01() * 10.0;
        spec.scans.push_back(telnet);
      }

      // Forge the binary.
      mal::MbfBinary content;
      content.behavior = spec;
      content.marker_strings = {sprof->marker, "POST /cdn-cgi/",
                                "/proc/net/tcp", "watchdog"};
      sample.binary = mal::forge(content, rng);
      if (rng.chance(cfg_.corrupt_fraction) &&
          (primary == nullptr || !primary->attacker)) {
        // A damaged download: keep a head fragment (the behaviour section
        // is cut mid-stream) plus a few bytes of line noise so every
        // corrupt artifact still hashes uniquely.
        sample.binary.resize(std::min<std::size_t>(100, sample.binary.size()));
        for (int nb = 0; nb < 4; ++nb) {
          sample.binary.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
        }
        sample.truth_corrupt = true;
      }
      sample.sha256 = mal::digest(sample.binary);
      sample.first_seen_day = ref_day;
      sample.source = rng.chance(0.55) ? FeedSource::kVirusTotal
                                       : FeedSource::kMalwareBazaar;
      sample.vt_detections = static_cast<int>(rng.uniform(6, 42));
      if (primary != nullptr) sample.truth_c2_refs.push_back(primary->address);
      if (fallback != nullptr) {
        sample.truth_c2_refs.push_back(net::to_string(fallback->cfg.ip));
      }
      for (const auto* e : extras) {
        sample.truth_c2_refs.push_back(net::to_string(e->cfg.ip));
      }
      samples_.push_back(std::move(sample));
    }
  }

  // Feed noise: the public feeds also surface ARM/x86 builds of the same
  // families; the paper's pipeline discards them at the architecture gate.
  const int extra = shard_share(
      static_cast<int>(cfg_.total_samples * cfg_.non_mips_extra_fraction),
      cfg_.shard_count, cfg_.shard_index);
  for (int i = 0; i < extra; ++i) {
    PlannedSample decoy;
    mal::MbfBinary content;
    content.arch = rng.chance(0.7) ? mal::Arch::kArm32 : mal::Arch::kX86;
    content.behavior = make_spec(rng, proto::Family::kMozi, nullptr, nullptr);
    content.marker_strings = {registry_->active(proto::Family::kMozi)->marker};
    decoy.binary = mal::forge(content, rng);
    decoy.sha256 = mal::digest(decoy.binary);
    decoy.truth_arch = content.arch;
    decoy.truth_family = proto::Family::kMozi;
    decoy.first_seen_day = static_cast<std::int64_t>(
        rng.uniform(0, static_cast<std::uint64_t>(weeks.back() + 6)));
    decoy.source = rng.chance(0.5) ? FeedSource::kVirusTotal
                                   : FeedSource::kMalwareBazaar;
    decoy.vt_detections = static_cast<int>(rng.uniform(6, 42));
    samples_.push_back(std::move(decoy));
  }

  std::sort(samples_.begin(), samples_.end(),
            [](const PlannedSample& a, const PlannedSample& b) {
              return a.first_seen_day < b.first_seen_day;
            });
}

mal::BehaviorSpec World::make_spec(util::Rng& rng, proto::Family family,
                                   const PlannedC2* primary,
                                   const PlannedC2* fallback) {
  const profile::FamilyProfile* prof =
      primary != nullptr && primary->cfg.profile != nullptr
          ? primary->cfg.profile
          : registry_->active(family);
  mal::BehaviorSpec spec;
  spec.family = family;
  // Variant binaries carry the profile name so the malware process picks up
  // the variant dialect; builtin-named profiles stay implicit (keeps the
  // behaviour-spec wire bytes identical to the pre-profile encoder).
  if (prof->name != proto::to_string(family)) spec.profile_name = prof->name;
  spec.bot_id = default_bot_id(family, rng);
  spec.keepalive_s = static_cast<std::uint32_t>(
      rng.uniform(prof->keepalive_min_s, prof->keepalive_max_s));
  spec.check_internet = rng.chance(0.4);
  spec.anti_sandbox = rng.chance(cfg_.anti_sandbox_fraction);
  if (rng.chance(cfg_.telemetry_fraction)) {
    spec.telemetry_domain =
        kTelemetryDomains[rng.uniform(0, std::size(kTelemetryDomains) - 1)];
  }

  if (proto::is_p2p(family)) {
    spec.node_id.clear();
    for (int i = 0; i < 20; ++i) {
      spec.node_id.push_back(static_cast<char>(rng.uniform(33, 126)));
    }
    for (int i = 0; i < 4; ++i) {
      const auto& all = asdb_.all();
      const auto& as = all[static_cast<std::size_t>(rng.uniform(0, all.size() - 1))];
      spec.p2p_peers.push_back(
          {asdb_.random_ip_in(as.asn, rng), static_cast<net::Port>(rng.uniform(20000, 60000))});
    }
    return spec;
  }

  if (primary == nullptr) throw std::logic_error("make_spec: centralised family needs C2");
  if (primary->cfg.domain) {
    spec.c2_domain = primary->cfg.domain;
  } else {
    spec.c2_ip = primary->cfg.ip;
  }
  spec.c2_port = primary->cfg.port;
  if (fallback != nullptr && prof->topology == profile::Topology::kFallback) {
    spec.c2_fallback_ip = fallback->cfg.ip;
    spec.c2_fallback_port = fallback->cfg.port;
  }
  return spec;
}

void World::advance_to_day(std::int64_t day) {
  if (day < current_day_) throw std::logic_error("World::advance_to_day: time reversal");
  current_day_ = day;

  // Kill servers whose lifetime ended (drain their issued-command log first).
  for (auto it = live_.begin(); it != live_.end();) {
    const PlannedC2& plan = c2s_[c2_index_.at(it->first)];
    if (day >= plan.death_day()) {
      const auto& issued = it->second->issued();
      for (std::size_t k = issued_seen_[it->first]; k < issued.size(); ++k) {
        issued_log_.push_back(issued[k]);
      }
      issued_seen_.erase(it->first);
      util::log_line(util::LogLevel::kDebug, "world",
                     "C2 down " + it->first + " day " + std::to_string(day));
      it = live_.erase(it);
    } else {
      ++it;
    }
  }

  // Bring up servers whose birth day arrived.
  while (next_birth_ < birth_order_.size() &&
         c2s_[birth_order_[next_birth_]].birth_day <= day) {
    const PlannedC2& plan = c2s_[birth_order_[next_birth_]];
    ++next_birth_;
    if (day >= plan.death_day()) continue;  // born and died in the skipped gap
    util::log_line(util::LogLevel::kDebug, "world",
                   "C2 up " + plan.address + ":" + std::to_string(plan.cfg.port) +
                   " day " + std::to_string(day) + (plan.attacker ? " [attacker]" : ""));
    auto rng = util::Rng(cfg_.seed ^ util::fnv1a64(plan.address), 0x5eed);
    auto server = std::make_unique<C2Server>(net_, plan.cfg, std::move(rng));
    if (plan.downloader) {
      DownloaderServer::attach_to(*server, downloader_hits_[plan.address]);
    }
    issued_seen_[plan.address] = 0;
    live_.emplace(plan.address, std::move(server));
  }

  // Refresh the issued-command log for still-live servers.
  for (auto& [addr, server] : live_) {
    const auto& issued = server->issued();
    for (std::size_t k = issued_seen_[addr]; k < issued.size(); ++k) {
      issued_log_.push_back(issued[k]);
    }
    issued_seen_[addr] = issued.size();
  }
}

C2Server* World::live_c2(const std::string& address) const {
  const auto it = live_.find(address);
  if (it != live_.end()) return it->second.get();
  // Domain-keyed servers are also reachable by IP string.
  const auto idx = c2_index_.find(address);
  if (idx == c2_index_.end()) return nullptr;
  const auto it2 = live_.find(c2s_[idx->second].address);
  return it2 == live_.end() ? nullptr : it2->second.get();
}

bool World::c2_alive_on(const std::string& address, std::int64_t day) const {
  const auto* plan = find_c2(address);
  return plan != nullptr && plan->alive_on(day);
}

const PlannedC2* World::find_c2(const std::string& address) const {
  const auto it = c2_index_.find(address);
  return it == c2_index_.end() ? nullptr : &c2s_[it->second];
}

}  // namespace malnet::botnet
