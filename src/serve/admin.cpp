#include "serve/admin.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/socket.hpp"

namespace malnet::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollMs = 100;
constexpr std::string_view kHeadEnd = "\r\n\r\n";

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string render_http(const AdminResponse& resp) {
  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + ' ' +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

struct AdminConn {
  util::Fd fd;
  std::string in;        // request head as read so far
  std::string out;       // rendered response
  std::size_t out_pos = 0;
  bool responding = false;  // head complete (or rejected); now writing
  Clock::time_point started = Clock::now();

  [[nodiscard]] std::size_t out_pending() const { return out.size() - out_pos; }
};

}  // namespace

std::optional<std::string> parse_admin_request(util::BytesView head) {
  // Only the request line matters; headers after it are ignored but must
  // be clean ASCII up to where we look (the first CRLF).
  std::string_view text(reinterpret_cast<const char*>(head.data()),
                        head.size());
  const auto line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view line = text.substr(0, line_end);
  if (line.size() < 5 || line.substr(0, 4) != "GET ") return std::nullopt;
  line.remove_prefix(4);
  const auto sp = line.find(' ');
  if (sp == std::string_view::npos) return std::nullopt;
  const std::string_view target = line.substr(0, sp);
  const std::string_view version = line.substr(sp + 1);
  if (target.empty() || target[0] != '/') return std::nullopt;
  if (version.substr(0, 7) != "HTTP/1.") return std::nullopt;
  for (const char c : target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) >= 0x7F) {
      return std::nullopt;
    }
  }
  // Query strings are not part of the admin surface; strip them so
  // "/metrics?x=y" still routes.
  const auto q = target.find('?');
  return std::string(target.substr(0, q));
}

struct AdminServer::Impl {
  AdminConfig cfg;
  obs::Registry& reg;
  std::map<std::string, AdminHandler> handlers;
  std::function<void()> tick;
  int tick_ms = 0;

  util::Fd listen_fd;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  obs::Counter* requests = nullptr;
  obs::Counter* http_errors = nullptr;
  obs::Counter* bytes_tx = nullptr;
  obs::Counter* connections = nullptr;

  Impl(AdminConfig c, obs::Registry& r) : cfg(std::move(c)), reg(r) {
    requests = &reg.counter("admin.requests");
    http_errors = &reg.counter("admin.http_errors");
    bytes_tx = &reg.counter("admin.bytes_tx");
    connections = &reg.counter("admin.connections");
  }

  AdminResponse dispatch(const std::string& path) {
    const auto it = handlers.find(path);
    if (it == handlers.end()) {
      http_errors->inc();
      return {404, "text/plain; charset=utf-8", "not found\n"};
    }
    try {
      return it->second();
    } catch (const std::exception& e) {
      http_errors->inc();
      return {500, "text/plain; charset=utf-8",
              std::string("handler error: ") + e.what() + '\n'};
    } catch (...) {
      http_errors->inc();
      return {500, "text/plain; charset=utf-8", "handler error\n"};
    }
  }

  /// Consumes input on `conn`; flips it to the responding state once the
  /// head is complete, oversized, or malformed. False on a dead socket.
  bool read_head(AdminConn& conn) {
    char buf[4096];
    for (;;) {
      const auto n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > cfg.max_request_bytes) {
          http_errors->inc();
          conn.out = render_http(
              {400, "text/plain; charset=utf-8", "request too large\n"});
          conn.responding = true;
          return true;
        }
        if (conn.in.find(kHeadEnd) != std::string::npos) {
          const auto path = parse_admin_request(util::BytesView{
              reinterpret_cast<const std::uint8_t*>(conn.in.data()),
              conn.in.size()});
          if (!path) {
            http_errors->inc();
            conn.out = render_http(
                {400, "text/plain; charset=utf-8", "bad request\n"});
          } else {
            requests->inc();
            conn.out = render_http(dispatch(*path));
          }
          conn.responding = true;
          return true;
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
        continue;
      }
      if (n == 0) return false;  // EOF before a complete head: just close
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// False when the response is fully written or the socket died — either
  /// way the connection is done.
  bool write_out(AdminConn& conn) {
    while (conn.out_pending() > 0) {
      const auto n = ::send(conn.fd.get(), conn.out.data() + conn.out_pos,
                            conn.out_pending(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        bytes_tx->inc(static_cast<std::uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return false;  // fully flushed: close (HTTP/1.0, Connection: close)
  }

  void loop() {
    std::vector<AdminConn> conns;
    std::vector<pollfd> fds;
    auto last_tick = Clock::now();
    const auto idle = std::chrono::milliseconds(cfg.idle_timeout_ms);

    while (!stopping.load()) {
      if (tick && tick_ms > 0 &&
          Clock::now() - last_tick >= std::chrono::milliseconds(tick_ms)) {
        last_tick = Clock::now();
        tick();
      }
      fds.clear();
      fds.push_back({listen_fd.get(), POLLIN, 0});
      for (const auto& conn : conns) {
        short events = conn.responding ? POLLOUT : POLLIN;
        fds.push_back({conn.fd.get(), events, 0});
      }
      const int wait =
          tick && tick_ms > 0 ? std::min(kPollMs, tick_ms) : kPollMs;
      (void)::poll(fds.data(), fds.size(), wait);

      if (fds[0].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept(listen_fd.get(), nullptr, nullptr);
          if (fd < 0) break;
          util::set_nonblocking(fd, true);
          connections->inc();
          AdminConn conn;
          conn.fd.reset(fd);
          conns.push_back(std::move(conn));
        }
      }

      const auto now = Clock::now();
      for (std::size_t i = 0; i < conns.size();) {
        auto& conn = conns[i];
        bool alive = true;
        const bool had_fd =
            i + 1 < fds.size() && fds[i + 1].fd == conn.fd.get();
        const short rev = had_fd ? fds[i + 1].revents : 0;
        if (rev & (POLLERR | POLLNVAL)) alive = false;
        if (alive && !conn.responding && (rev & (POLLIN | POLLHUP))) {
          alive = read_head(conn);
        }
        if (alive && conn.responding) alive = write_out(conn);
        if (alive && now - conn.started > idle) alive = false;
        if (!alive) {
          conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
  }
};

AdminServer::AdminServer(AdminConfig cfg, obs::Registry& registry)
    : impl_(std::make_unique<Impl>(std::move(cfg), registry)) {}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handle(std::string path, AdminHandler fn) {
  impl_->handlers[std::move(path)] = std::move(fn);
}

void AdminServer::set_tick(std::function<void()> fn, int interval_ms) {
  impl_->tick = std::move(fn);
  impl_->tick_ms = interval_ms;
}

void AdminServer::start() {
  if (impl_->running.load()) return;
  auto listen = util::tcp_listen(impl_->cfg.host, impl_->cfg.port);
  impl_->listen_fd = std::move(listen.fd);
  impl_->port = listen.port;
  impl_->stopping.store(false);
  impl_->running.store(true);
  impl_->thread = std::thread([this] { impl_->loop(); });
}

void AdminServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stopping.store(true);
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->listen_fd.reset();
  impl_->running.store(false);
}

std::uint16_t AdminServer::port() const { return impl_->port; }

bool AdminServer::running() const { return impl_->running.load(); }

std::optional<std::string> admin_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& path, int timeout_ms) {
  auto fd = util::tcp_connect(host, port, timeout_ms);
  if (!fd.valid()) return std::nullopt;
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!util::send_all(fd.get(),
                      util::BytesView{
                          reinterpret_cast<const std::uint8_t*>(req.data()),
                          req.size()},
                      timeout_ms)) {
    return std::nullopt;
  }
  std::string doc;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::uint8_t buf[16 * 1024];
    const int left = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count());
    if (left <= 0) return std::nullopt;
    const int n = util::recv_some(fd.get(), buf, sizeof(buf), left);
    if (n < 0) return std::nullopt;
    if (n == 0) break;
    doc.append(reinterpret_cast<const char*>(buf),
               static_cast<std::size_t>(n));
  }
  if (doc.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const auto sp = doc.find(' ');
  if (sp == std::string::npos || doc.compare(sp + 1, 3, "200") != 0) {
    return std::nullopt;
  }
  const auto head_end = doc.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  return doc.substr(head_end + 4);
}

}  // namespace malnet::serve
