// malnet::serve — concurrent TCP query server over the study store
// (DESIGN.md §13).
//
// Wraps a store::QueryEngine (built once at start(): every segment's
// header+index is read, payloads never) and answers wire-protocol requests
// from many clients at once. Index-only answering is preserved under
// concurrency by construction: the merged index is immutable after start(),
// so store.payload_bytes_read stays 0 for the server's whole lifetime, and
// N concurrent clients receive byte-identical answers to a single-client
// `malnetctl query`.
//
// Concurrency model: one acceptor plus a small fixed set of I/O threads,
// each running a poll(2) loop over its share of connections (non-blocking
// sockets, level-triggered). Queries are answered inline on the I/O thread —
// they are sub-millisecond in-memory lookups, so an event loop beats a
// thread per connection at the 1024-client scale bench_serve drives.
//
// Per-connection backpressure: at most `max_pipeline` requests are parsed
// per connection ahead of its writes, and once the pending output buffer
// exceeds `max_output_buffer` the server stops reading that connection
// (POLLIN is dropped) until the client drains responses. A slow reader
// therefore bounds its own memory, never the server's.
//
// Timeouts reuse the dns::Resolver discipline: a connection idle longer
// than `idle_timeout` is closed (serve.idle_timeouts), and every socket op
// is poll()-bounded so a hung peer cannot wedge an I/O thread.
//
// Graceful shutdown: stop() closes the listener, answers every request
// already received, flushes each connection within `drain_timeout`, then
// joins all threads. request_stop() is async-signal-safe (one write() to a
// pipe), so a SIGTERM handler can trigger the same drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "util/bytes.hpp"

namespace malnet::serve {

/// Per-request context handed to aux handlers alongside the frame body.
struct AuxContext {
  std::string_view peer;  // remote "ip:port" (may be "?")
};

struct ServeConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the pick
  /// I/O threads (0 = min(4, hardware_concurrency)); each owns a poll loop.
  int io_threads = 0;
  /// Connections idle longer than this are closed.
  int idle_timeout_ms = 30'000;
  /// Budget for flushing pending responses during stop().
  int drain_timeout_ms = 5'000;
  /// Requests parsed ahead of a connection's unwritten responses.
  int max_pipeline = 128;
  /// Pending response bytes per connection before reads pause.
  std::size_t max_output_buffer = 4 << 20;
  std::size_t max_frame_body = 1 << 20;
  /// Escape hatch for a second frame family on the same port (the sync
  /// protocol, DESIGN.md §14): a body the query codec rejects is offered
  /// here and the handler returns a complete response frame — or nullopt
  /// to have the body treated as a protocol error. Handlers run inline on
  /// the I/O threads and must be thread-safe.
  std::function<std::optional<util::Bytes>(util::BytesView, const AuxContext&)>
      aux_handler;
  /// Frame-body bound while aux_handler is set (aux frames — whole
  /// segments — dwarf query frames; the effective per-connection limit is
  /// the larger of the two bounds).
  std::size_t max_aux_frame_body = 1 << 20;
  /// Query requests at or above this latency land in the slow-request log.
  std::int64_t slow_threshold_us = 10'000;
  /// Slowest entries the log retains.
  std::size_t slow_log_capacity = 32;
  /// When set (and enabled), traced requests (MQR2) record a wall-clock
  /// server span here — the /tracez side of cross-node tracing.
  obs::SpanRecorder* spans = nullptr;
};

/// One row of the live connection table (/statusz).
struct ConnectionInfo {
  std::string peer;
  std::size_t out_pending = 0;   // unwritten response bytes
  int pending_responses = 0;     // responses queued since last full drain
  bool paused = false;           // backpressured: reads off
  bool closing = false;
  std::int64_t idle_ms = 0;      // since last byte read
};

/// Metrics (on the registry passed in, all `serve.`-prefixed):
/// connections_accepted/closed, connections_active (gauge), requests,
/// protocol_errors, idle_timeouts, backpressure_pauses, bytes_rx/bytes_tx,
/// and the serve.request_latency_us histogram (wall-clock, operational
/// only — never part of a byte-compared artifact, same contract as
/// store.query_latency_us).
class Server {
 public:
  Server(store::Store& store, ServeConfig cfg, obs::Registry& registry);
  /// stop()s if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, builds the QueryEngine (index-only reads), spawns
  /// the acceptor and I/O threads. Throws std::runtime_error on bind
  /// failure. Idempotent until stop().
  void start();

  /// Bound port (valid after start(); resolves port-0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, answer + flush everything already
  /// received (bounded by drain_timeout_ms), close, join. Safe to call
  /// from any thread; second and later calls are no-ops.
  void stop();

  /// Async-signal-safe stop trigger (single write() to an internal pipe).
  /// The drain itself runs on the thread that called start()/wait().
  void request_stop();

  /// Blocks until request_stop() (or stop() from another thread), then
  /// performs the drain. The malnetctl serve --listen main loop.
  void wait();

  [[nodiscard]] bool running() const { return running_.load(); }

  /// True once a stop/drain has been requested (the /healthz drain state).
  [[nodiscard]] bool draining() const;

  /// Live connection table, refreshed by each I/O thread once per poll
  /// tick — a point-in-time view, cheap enough for an admin page.
  [[nodiscard]] std::vector<ConnectionInfo> connections() const;

  /// Slow-request log (query requests above ServeConfig::slow_threshold_us).
  [[nodiscard]] const obs::SlowLog& slow_log() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
};

}  // namespace malnet::serve
