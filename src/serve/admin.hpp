// malnet::serve admin plane (DESIGN.md §15).
//
// A deliberately minimal HTTP/1.0 text server for live introspection of a
// running serve/sync process: /metrics (Prometheus exposition with
// windowed rates), /healthz, /statusz, /slowz, /tracez. One thread, one
// poll(2) loop over util sockets — the data plane's I/O threads are never
// touched, so scraping cannot steal a request's cycles beyond the shared
// metric atomics.
//
// Protocol scope is intentionally tiny: GET only, request head bounded at
// `max_request_bytes`, every response carries Content-Length and
// Connection: close, and every connection is closed after one response (or
// dropped after one malformed/oversized head). The parser is pure and
// exposed for fuzzing — no admin input may crash the process or leak a
// connection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace malnet::serve {

/// Parses an HTTP request head (everything up to and including the blank
/// line, or however much arrived). Returns the request-target path for a
/// well-formed `GET <path> HTTP/1.x` request line; nullopt for anything
/// else (other methods, missing version, embedded NUL/control bytes).
/// Never throws.
[[nodiscard]] std::optional<std::string> parse_admin_request(
    util::BytesView head);

struct AdminResponse {
  int status = 200;  // 200, 404, 500 (400 is produced by the server itself)
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

using AdminHandler = std::function<AdminResponse()>;

struct AdminConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; AdminServer::port() reports it
  /// Cap on a request head; longer requests get 400 and a close.
  std::size_t max_request_bytes = 4096;
  /// A connection that has not completed its request in this long is
  /// dropped (admin clients are curl, not pipelines).
  int idle_timeout_ms = 5'000;
};

/// Metrics (all `admin.`-prefixed, on the registry passed in): requests,
/// http_errors, bytes_tx, connections.
class AdminServer {
 public:
  AdminServer(AdminConfig cfg, obs::Registry& registry);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers a handler for an exact path. Must be called before start();
  /// handlers run on the admin thread and may block it (scrapes are
  /// serialized by design).
  void handle(std::string path, AdminHandler fn);

  /// Periodic callback on the admin thread (the metrics-ring sampler).
  /// Must be set before start(); 0 or negative interval disables it.
  void set_tick(std::function<void()> fn, int interval_ms);

  /// Binds and spawns the admin thread. Throws std::runtime_error on bind
  /// failure. Idempotent until stop().
  void start();
  /// Joins the admin thread and closes every connection. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Minimal HTTP GET against an admin endpoint: returns the response body
/// on a 200, nullopt on connect failure, timeout, or any other status.
/// The scrape client used by tests, bench_serve and `malnetctl sync
/// --trace-out` (fetching the remote's /tracez).
[[nodiscard]] std::optional<std::string> admin_get(const std::string& host,
                                                   std::uint16_t port,
                                                   const std::string& path,
                                                   int timeout_ms = 5'000);

}  // namespace malnet::serve
