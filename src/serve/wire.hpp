// malnet::serve wire protocol (DESIGN.md §13).
//
// Length-prefixed binary frames over TCP, designed for pipelining: a client
// may write any number of request frames before reading a response, and the
// server answers strictly in arrival order, echoing each request's id.
//
//   frame    := u32 body_len (big-endian) || body          body_len <= 1 MiB
//   request  := u32 magic "MQR1" || u64 id || query bytes (UTF-8 query line)
//   traced   := u32 magic "MQR2" || u64 id || u64 trace_id || u64 span_id
//               || query bytes
//   response := u32 magic "MPR1" || u64 id || u8 status || answer bytes
//
// MQR2 is the backward-compatible tracing extension: encode_request emits
// it only when a trace id is set, so untraced clients produce byte-for-byte
// MQR1 and old servers never see the new magic. Servers accept both.
//
// status 0 = ok (answer is the QueryEngine text, byte-identical to what
// `malnetctl query` prints for the same line); status 1 = protocol error
// (the server closes the connection after sending it). A frame whose length
// prefix exceeds the bound, or whose body fails to decode, is a protocol
// error — never an exception out of the framing layer. Malformed input can
// only ever cost the sender its own connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace malnet::serve {

inline constexpr std::uint32_t kRequestMagic = 0x4D515231;    // "MQR1"
inline constexpr std::uint32_t kRequestMagicV2 = 0x4D515232;  // "MQR2"
inline constexpr std::uint32_t kResponseMagic = 0x4D505231;   // "MPR1"
/// Upper bound on a frame body; the length prefix itself is 4 more bytes.
inline constexpr std::size_t kMaxFrameBody = 1 << 20;
inline constexpr std::size_t kFramePrefixSize = 4;
/// Fixed part of a request body (magic + id).
inline constexpr std::size_t kRequestHeaderSize = 4 + 8;
/// Fixed part of a traced (MQR2) request body (magic + id + trace + span).
inline constexpr std::size_t kRequestHeaderSizeV2 = 4 + 8 + 8 + 8;
/// Fixed part of a response body (magic + id + status).
inline constexpr std::size_t kResponseHeaderSize = 4 + 8 + 1;

struct Request {
  std::uint64_t id = 0;
  std::string query;
  /// Cross-node tracing (DESIGN.md §15). Both zero = untraced; the encoder
  /// then emits the V1 frame unchanged.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

enum class Status : std::uint8_t { kOk = 0, kProtocolError = 1 };

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::string text;

  friend bool operator==(const Response&, const Response&) = default;
};

/// Full frame (length prefix included), ready to write to a socket.
[[nodiscard]] util::Bytes encode_request(const Request& req);
[[nodiscard]] util::Bytes encode_response(const Response& resp);

/// Decode a frame *body* (length prefix already stripped by FrameReader).
/// Nullopt on bad magic or a short body; never throws.
[[nodiscard]] std::optional<Request> decode_request(util::BytesView body);
[[nodiscard]] std::optional<Response> decode_response(util::BytesView body);

/// Incremental deframer: feed() arbitrary byte chunks as they arrive,
/// next() yields complete frame bodies in order. A length prefix above
/// `max_body` poisons the reader (error() stays true, next() stays empty) —
/// the caller's move is to drop the connection.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_body = kMaxFrameBody)
      : max_body_(max_body) {}

  void feed(util::BytesView data);
  [[nodiscard]] std::optional<util::Bytes> next();

  [[nodiscard]] bool error() const { return error_; }
  /// Bytes buffered but not yet returned (partial frame + unparsed input).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_body_;
  util::Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool error_ = false;
};

}  // namespace malnet::serve
