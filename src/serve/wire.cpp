#include "serve/wire.hpp"

namespace malnet::serve {

namespace {

/// Big-endian u32 at `p` (caller guarantees 4 bytes).
std::uint32_t read_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

util::Bytes encode_request(const Request& req) {
  util::ByteWriter body;
  const bool traced = req.trace_id != 0 || req.span_id != 0;
  body.u32(traced ? kRequestMagicV2 : kRequestMagic);
  body.u64(req.id);
  if (traced) {
    body.u64(req.trace_id);
    body.u64(req.span_id);
  }
  body.raw(req.query);

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());
  return frame.take();
}

util::Bytes encode_response(const Response& resp) {
  util::ByteWriter body;
  body.u32(kResponseMagic);
  body.u64(resp.id);
  body.u8(static_cast<std::uint8_t>(resp.status));
  body.raw(resp.text);

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());
  return frame.take();
}

std::optional<Request> decode_request(util::BytesView body) {
  if (body.size() < kRequestHeaderSize || body.size() > kMaxFrameBody) {
    return std::nullopt;
  }
  util::ByteReader r(body);
  const auto magic = r.u32();
  if (magic != kRequestMagic && magic != kRequestMagicV2) return std::nullopt;
  Request req;
  req.id = r.u64();
  if (magic == kRequestMagicV2) {
    if (body.size() < kRequestHeaderSizeV2) return std::nullopt;
    req.trace_id = r.u64();
    req.span_id = r.u64();
  }
  req.query = r.str(r.remaining());
  return req;
}

std::optional<Response> decode_response(util::BytesView body) {
  if (body.size() < kResponseHeaderSize || body.size() > kMaxFrameBody) {
    return std::nullopt;
  }
  util::ByteReader r(body);
  if (r.u32() != kResponseMagic) return std::nullopt;
  Response resp;
  resp.id = r.u64();
  const auto status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kProtocolError)) {
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  resp.text = r.str(r.remaining());
  return resp;
}

void FrameReader::feed(util::BytesView data) {
  if (error_) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state pipelining does one memmove per many frames.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<util::Bytes> FrameReader::next() {
  if (error_) return std::nullopt;
  if (buf_.size() - pos_ < kFramePrefixSize) return std::nullopt;
  const std::uint32_t len = read_u32(buf_.data() + pos_);
  if (len > max_body_) {
    error_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ - kFramePrefixSize < len) return std::nullopt;
  const auto* begin = buf_.data() + pos_ + kFramePrefixSize;
  util::Bytes body(begin, begin + len);
  pos_ += kFramePrefixSize + len;
  return body;
}

}  // namespace malnet::serve
