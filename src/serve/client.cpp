#include "serve/client.hpp"

#include <chrono>
#include <thread>

namespace malnet::serve {

bool Client::connect(const std::string& host, std::uint16_t port,
                     ClientOptions opts) {
  close();
  opts_ = opts;
  int backoff = opts.backoff_ms;
  for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    auto fd = util::tcp_connect(host, port, opts.connect_timeout_ms);
    if (fd.valid()) {
      fd_ = std::move(fd);
      reader_ = FrameReader();
      return true;
    }
  }
  return false;
}

void Client::close() {
  fd_.reset();
  reader_ = FrameReader();
}

std::uint64_t Client::send(std::string_view query) {
  if (!fd_.valid()) return 0;
  const std::uint64_t id = next_id_++;
  // Span ids derive from the request id — unique per request, and the
  // server echoes them back in its spans for client/server correlation.
  last_span_id_ = trace_id_ == 0 ? 0 : id;
  const auto frame =
      encode_request({id, std::string(query), trace_id_, last_span_id_});
  if (!util::send_all(fd_.get(), frame, opts_.io_timeout_ms)) {
    close();
    return 0;
  }
  return id;
}

std::optional<Response> Client::recv() {
  if (!fd_.valid()) return std::nullopt;
  for (;;) {
    if (auto body = reader_.next()) {
      auto resp = decode_response(*body);
      if (!resp) close();  // malformed frame: the stream is unusable
      return resp;
    }
    if (reader_.error()) {
      close();
      return std::nullopt;
    }
    std::uint8_t buf[64 * 1024];
    const int n = util::recv_some(fd_.get(), buf, sizeof(buf),
                                  opts_.io_timeout_ms);
    if (n <= 0) {  // timeout, error, or orderly server close
      close();
      return std::nullopt;
    }
    reader_.feed({buf, static_cast<std::size_t>(n)});
  }
}

std::optional<std::string> Client::query(std::string_view q) {
  const auto id = send(q);
  if (id == 0) return std::nullopt;
  auto resp = recv();
  if (!resp || resp->id != id || resp->status != Status::kOk) {
    return std::nullopt;
  }
  return std::move(resp->text);
}

}  // namespace malnet::serve
