// malnet::serve client — the library side of the wire protocol.
//
// Blocking, single-connection, pipelining-capable. Connection establishment
// follows the dns::Resolver retry discipline: a bounded per-attempt timeout
// plus `max_retries` re-attempts with exponential backoff, so transient
// listen-queue overflow under a 1024-client stampede is retried instead of
// surfaced. Every read and write after that is poll()-bounded by
// `io_timeout_ms` — a hung server costs the caller a timeout, never a hang.
//
// Two usage shapes:
//   * query(text)          — send one request, wait for its answer
//     (request/response, what `malnetctl query --connect` uses);
//   * send(text) ... recv()— explicit pipelining: write any number of
//     requests, then collect responses in order (the bench load generator).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/wire.hpp"
#include "util/socket.hpp"

namespace malnet::serve {

struct ClientOptions {
  int connect_timeout_ms = 2'000;
  /// Bound on each send/recv wait (not on a whole pipelined burst).
  int io_timeout_ms = 10'000;
  /// Connect re-attempts after the first failure (0 = single shot).
  int max_retries = 2;
  /// First retry waits this long; each further retry doubles it.
  int backoff_ms = 100;
};

class Client {
 public:
  Client() = default;

  /// Connects (with retry/backoff per `opts`). False when every attempt
  /// failed; the client stays unconnected and is safe to reuse.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                             ClientOptions opts = {});

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void close();

  /// Writes one request frame; returns its id (0 on I/O failure — ids
  /// start at 1). Does not wait for the answer: callers may pipeline.
  [[nodiscard]] std::uint64_t send(std::string_view query);

  /// Next response in pipeline order. Nullopt on timeout, peer close, or a
  /// malformed frame (the connection is closed in every failure case).
  [[nodiscard]] std::optional<Response> recv();

  /// send + recv, checking the echoed id. Nullopt on any failure.
  [[nodiscard]] std::optional<std::string> query(std::string_view q);

  /// Stamps every subsequent request with this trace id and a fresh span
  /// id (MQR2 framing, DESIGN.md §15). 0 reverts to untraced MQR1 frames.
  void set_trace(std::uint64_t trace_id) { trace_id_ = trace_id; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }
  /// Span id stamped on the most recent send().
  [[nodiscard]] std::uint64_t last_span_id() const { return last_span_id_; }

 private:
  util::Fd fd_;
  ClientOptions opts_;
  FrameReader reader_;
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_id_ = 0;
  std::uint64_t last_span_id_ = 0;
};

}  // namespace malnet::serve
