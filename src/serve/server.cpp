#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "serve/wire.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace malnet::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Same bounds as store.query_latency_us, so server-side and engine-side
/// latency distributions are directly comparable.
const std::vector<std::int64_t> kLatencyBounds = {100, 1000, 10000, 100000,
                                                  1000000};

/// Poll-loop tick: upper bound on how stale idle-timeout checks and stop
///-flag observation can be.
constexpr int kTickMs = 100;

struct Connection {
  util::Fd fd;
  std::string peer;  // "ip:port", captured at adoption
  FrameReader reader;
  util::Bytes out;
  std::size_t out_pos = 0;
  /// Responses queued since the output buffer last fully drained — the
  /// pipelining depth the backpressure bound applies to.
  int pending_responses = 0;
  Clock::time_point last_active = Clock::now();
  bool paused = false;    // backpressure: reads off until output drains
  bool closing = false;   // flush pending output, then close
  bool read_eof = false;  // peer half-closed; no more requests will arrive

  [[nodiscard]] std::size_t out_pending() const { return out.size() - out_pos; }

  void queue(util::Bytes frame) {
    if (out_pos > 0 && out_pos >= out.size() / 2) {
      out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(out_pos));
      out_pos = 0;
    }
    out.insert(out.end(), frame.begin(), frame.end());
    ++pending_responses;
  }
};

/// A self-pipe: the only async-signal-safe and poll()-able wakeup there is.
struct WakePipe {
  util::Fd rd, wr;

  WakePipe() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      throw std::runtime_error(std::string("serve: pipe: ") +
                               std::strerror(errno));
    }
    rd.reset(fds[0]);
    wr.reset(fds[1]);
    util::set_nonblocking(rd.get(), true);
    util::set_nonblocking(wr.get(), true);
  }

  void wake() const {
    const char b = 1;
    [[maybe_unused]] const auto n = ::write(wr.get(), &b, 1);
  }

  void drain() const {
    char buf[64];
    while (::read(rd.get(), buf, sizeof(buf)) > 0) {
    }
  }
};

struct IoThread {
  std::thread thread;
  WakePipe wake;
  std::mutex mu;
  std::vector<int> pending;  // accepted fds awaiting adoption
  // Point-in-time view of this thread's connections, refreshed once per
  // poll tick for Server::connections().
  std::mutex stats_mu;
  std::vector<ConnectionInfo> stats;
};

/// First whitespace-delimited token — the op label for slow-log/trace rows.
std::string first_word(std::string_view s) {
  const auto end = s.find_first_of(" \t\r\n");
  return std::string(s.substr(0, std::min(end, s.size())));
}

}  // namespace

struct Server::Impl {
  store::Store& store;
  ServeConfig cfg;
  obs::Registry& reg;

  std::optional<store::QueryEngine> engine;
  util::Fd listen_fd;
  std::thread acceptor;
  std::vector<std::unique_ptr<IoThread>> io;
  std::atomic<bool> stopping{false};
  WakePipe stop_wake;  // request_stop() -> wait()
  std::mutex stop_mu;
  bool stopped = false;
  obs::SlowLog slow;

  // Instruments are cached once; per-request cost is a relaxed fetch_add.
  obs::Counter* accepted = nullptr;
  obs::Counter* closed = nullptr;
  obs::Gauge* active = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* protocol_errors = nullptr;
  obs::Counter* idle_timeouts = nullptr;
  obs::Counter* backpressure_pauses = nullptr;
  obs::Counter* bytes_rx = nullptr;
  obs::Counter* bytes_tx = nullptr;
  obs::Histogram* latency = nullptr;

  Impl(store::Store& s, ServeConfig c, obs::Registry& r)
      : store(s),
        cfg(std::move(c)),
        reg(r),
        slow(cfg.slow_log_capacity, cfg.slow_threshold_us) {
    accepted = &reg.counter("serve.connections_accepted");
    closed = &reg.counter("serve.connections_closed");
    active = &reg.gauge("serve.connections_active");
    requests = &reg.counter("serve.requests");
    protocol_errors = &reg.counter("serve.protocol_errors");
    idle_timeouts = &reg.counter("serve.idle_timeouts");
    backpressure_pauses = &reg.counter("serve.backpressure_pauses");
    bytes_rx = &reg.counter("serve.bytes_rx");
    bytes_tx = &reg.counter("serve.bytes_tx");
    latency = &reg.histogram("serve.request_latency_us", kLatencyBounds);
  }

  void accept_loop();
  void io_loop(IoThread& self);

  /// Largest frame body any single connection may carry: query frames are
  /// capped at max_frame_body, but with an aux handler installed the same
  /// socket also carries the aux family's (typically larger) frames.
  [[nodiscard]] std::size_t effective_max_body() const {
    return cfg.aux_handler
               ? std::max(cfg.max_frame_body, cfg.max_aux_frame_body)
               : cfg.max_frame_body;
  }

  /// Answers one decoded request (latency-timed). A body the query codec
  /// rejects goes to the aux handler when one is installed; a decode
  /// failure everywhere is a protocol error: one status-1 response, then
  /// flush-and-close.
  void handle_frame(Connection& conn, util::BytesView body) {
    const auto req = decode_request(body);
    if (!req) {
      if (cfg.aux_handler) {
        const auto t0 = Clock::now();
        auto frame = cfg.aux_handler(body, AuxContext{conn.peer});
        if (frame) {
          latency->record(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count());
          requests->inc();
          conn.queue(std::move(*frame));
          return;
        }
      }
      protocol_errors->inc();
      conn.queue(encode_response(
          {0, Status::kProtocolError, "err malformed request frame"}));
      conn.closing = true;
      return;
    }
    const std::int64_t wall0 = obs::wall_now_us();
    const auto t0 = Clock::now();
    std::string answer = engine->answer(req->query);
    const std::int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
            .count();
    latency->record(us);
    requests->inc();
    // Threshold pre-check against the (immutable) config spares fast
    // requests the slow-log mutex and the op-string allocation.
    if (us >= cfg.slow_threshold_us) {
      slow.record({"query:" + first_word(req->query), conn.peer, us,
                   answer.size(), req->trace_id, req->span_id, wall0});
    }
    if (cfg.spans != nullptr && req->trace_id != 0 && cfg.spans->enabled()) {
      cfg.spans->span("serve:" + first_word(req->query), "serve", wall0, us,
                      req->trace_id, req->span_id,
                      "\"bytes\":" + std::to_string(answer.size()) +
                          ",\"peer\":\"" + obs::json_escape(conn.peer) + '"');
    }
    conn.queue(encode_response({req->id, Status::kOk, std::move(answer)}));
  }

  /// Parses and answers buffered requests up to the backpressure bounds
  /// (unbounded when draining). A protocol error sets conn.closing; the
  /// caller flushes the final status-1 response before closing.
  void pump_requests(Connection& conn, bool draining) {
    while (!conn.closing) {
      if (!draining && (conn.pending_responses >= cfg.max_pipeline ||
                        conn.out_pending() > cfg.max_output_buffer)) {
        if (!conn.paused) {
          conn.paused = true;
          backpressure_pauses->inc();
        }
        break;
      }
      auto body = conn.reader.next();
      if (!body) break;
      handle_frame(conn, *body);
    }
    if (conn.reader.error() && !conn.closing) {
      protocol_errors->inc();
      conn.queue(encode_response(
          {0, Status::kProtocolError, "err oversized frame"}));
      conn.closing = true;
    }
  }

  /// Non-blocking write of pending output. False on a dead socket.
  bool flush(Connection& conn) {
    while (conn.out_pending() > 0) {
      const auto n = ::send(conn.fd.get(), conn.out.data() + conn.out_pos,
                            conn.out_pending(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        bytes_tx->inc(static_cast<std::uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    conn.out.clear();
    conn.out_pos = 0;
    conn.pending_responses = 0;
    if (conn.paused) conn.paused = false;
    return true;
  }

  /// Reads until EAGAIN/EOF, feeding the deframer. False on a dead socket.
  bool read_input(Connection& conn) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const auto n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        bytes_rx->inc(static_cast<std::uint64_t>(n));
        conn.reader.feed({buf, static_cast<std::size_t>(n)});
        conn.last_active = Clock::now();
        if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
        continue;
      }
      if (n == 0) {
        conn.read_eof = true;
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  void close_conn(Connection& conn) {
    conn.fd.reset();
    closed->inc();
    active->add(-1);
  }
};

Server::Server(store::Store& store, ServeConfig cfg, obs::Registry& registry)
    : impl_(std::make_unique<Impl>(store, std::move(cfg), registry)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) return;
  // Index-only engine build: the one place segment files are touched.
  impl_->engine.emplace(impl_->store);
  auto listen = util::tcp_listen(impl_->cfg.host, impl_->cfg.port);
  impl_->listen_fd = std::move(listen.fd);
  port_ = listen.port;

  int threads = impl_->cfg.io_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::min<std::size_t>(4, util::ThreadPool::default_worker_count()));
  }
  for (int i = 0; i < threads; ++i) {
    impl_->io.push_back(std::make_unique<IoThread>());
  }
  running_.store(true);
  for (auto& io : impl_->io) {
    IoThread* self = io.get();
    io->thread = std::thread([this, self] { impl_->io_loop(*self); });
  }
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
}

void Server::request_stop() {
  impl_->stopping.store(true);
  impl_->stop_wake.wake();
}

void Server::wait() {
  while (!impl_->stopping.load()) {
    pollfd p{impl_->stop_wake.rd.get(), POLLIN, 0};
    (void)::poll(&p, 1, kTickMs);
  }
  stop();
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(impl_->stop_mu);
  if (impl_->stopped) return;
  impl_->stopped = true;
  impl_->stopping.store(true);
  impl_->stop_wake.wake();
  for (auto& io : impl_->io) io->wake.wake();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  for (auto& io : impl_->io) {
    if (io->thread.joinable()) io->thread.join();
  }
  impl_->listen_fd.reset();
  running_.store(false);
}

void Server::Impl::accept_loop() {
  std::size_t next = 0;
  while (!stopping.load()) {
    pollfd p{listen_fd.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, kTickMs);
    if (rc <= 0) continue;
    for (;;) {
      const int fd = ::accept(listen_fd.get(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN / transient error: back to poll
      util::set_nonblocking(fd, true);
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepted->inc();
      active->add(1);
      auto& target = *io[next++ % io.size()];
      {
        std::lock_guard<std::mutex> lock(target.mu);
        target.pending.push_back(fd);
      }
      target.wake.wake();
    }
  }
  // Refuse further connections the moment draining starts.
  listen_fd.reset();
}

void Server::Impl::io_loop(IoThread& self) {
  std::vector<Connection> conns;
  std::vector<pollfd> fds;
  const auto idle_timeout = std::chrono::milliseconds(cfg.idle_timeout_ms);

  const auto adopt = [&] {
    std::vector<int> fresh;
    {
      std::lock_guard<std::mutex> lock(self.mu);
      fresh.swap(self.pending);
    }
    for (const int fd : fresh) {
      Connection conn;
      conn.fd.reset(fd);
      conn.peer = util::peer_address(fd);
      conn.reader = FrameReader(effective_max_body());
      conns.push_back(std::move(conn));
    }
  };

  const auto refresh_stats = [&] {
    std::lock_guard<std::mutex> lock(self.stats_mu);
    self.stats.clear();
    const auto now = Clock::now();
    for (const auto& conn : conns) {
      ConnectionInfo info;
      info.peer = conn.peer;
      info.out_pending = conn.out_pending();
      info.pending_responses = conn.pending_responses;
      info.paused = conn.paused;
      info.closing = conn.closing;
      info.idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - conn.last_active)
                         .count();
      self.stats.push_back(std::move(info));
    }
  };

  while (!stopping.load()) {
    fds.clear();
    fds.push_back({self.wake.rd.get(), POLLIN, 0});
    for (const auto& conn : conns) {
      short events = 0;
      if (!conn.paused && !conn.closing && !conn.read_eof) events |= POLLIN;
      if (conn.out_pending() > 0) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
    }
    (void)::poll(fds.data(), fds.size(), kTickMs);
    self.wake.drain();
    adopt();

    const auto now = Clock::now();
    for (std::size_t i = 0; i < conns.size();) {
      auto& conn = conns[i];
      // fds and conns can be out of step after adopt(); re-derive liveness
      // from the socket itself rather than trusting revents indices.
      bool alive = true;
      const bool had_fd = i + 1 < fds.size() && fds[i + 1].fd == conn.fd.get();
      const short rev = had_fd ? fds[i + 1].revents : 0;

      if (rev & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (rev & (POLLIN | POLLHUP))) {
        alive = read_input(conn);
      }
      // Alternate flush and pump until blocked: a fast-draining client
      // releases the backpressure pause and gets its next pipeline batch in
      // the same pass, instead of waiting for the next poll tick.
      while (alive) {
        if (conn.out_pending() > 0) {
          alive = flush(conn);
          if (!alive) break;
        }
        if (conn.out_pending() > 0) break;  // client lagging: wait for POLLOUT
        if (conn.closing) break;
        const int before = conn.pending_responses;
        pump_requests(conn, /*draining=*/false);
        if (conn.pending_responses == before) break;  // no complete frame left
      }
      if (alive && conn.closing && conn.out_pending() == 0) alive = false;
      if (alive && conn.read_eof && conn.reader.buffered() == 0 &&
          conn.out_pending() == 0) {
        alive = false;  // peer finished and everything owed is flushed
      }
      if (alive && now - conn.last_active > idle_timeout) {
        idle_timeouts->inc();
        alive = false;
      }

      if (!alive) {
        close_conn(conn);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    refresh_stats();
  }

  // Drain: one final read of whatever each client already wrote (the
  // listener is gone, so this is bounded), answer it all, then flush each
  // connection within the drain budget.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg.drain_timeout_ms);
  adopt();
  for (auto& conn : conns) {
    (void)read_input(conn);
    pump_requests(conn, /*draining=*/true);
    while (conn.out_pending() > 0 && Clock::now() < deadline) {
      if (!flush(conn)) break;
      if (conn.out_pending() == 0) break;
      pollfd p{conn.fd.get(), POLLOUT, 0};
      (void)::poll(&p, 1, kTickMs);
    }
    close_conn(conn);
  }
  {
    // Leave an empty table behind — draining closed everything.
    std::lock_guard<std::mutex> lock(self.stats_mu);
    self.stats.clear();
  }
}

bool Server::draining() const { return impl_->stopping.load(); }

std::vector<ConnectionInfo> Server::connections() const {
  std::vector<ConnectionInfo> out;
  for (const auto& io : impl_->io) {
    std::lock_guard<std::mutex> lock(io->stats_mu);
    out.insert(out.end(), io->stats.begin(), io->stats.end());
  }
  return out;
}

const obs::SlowLog& Server::slow_log() const { return impl_->slow; }

}  // namespace malnet::serve
