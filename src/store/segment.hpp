// malnet::store segment format (DESIGN.md §12).
//
// A segment is one immutable, content-hashed unit of study output: a fixed
// 38-byte header, a small query index, and the full MDS payload
// (report::serialize_datasets bytes). Readers that only need aggregate
// answers — C2-liveness time series, per-family counts, per-vulnerability
// exploit attribution — read header + index and never touch the payload;
// the store surfaces the byte counts as store.* metrics so that
// partial-read behaviour is testable, not just claimed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "util/bytes.hpp"

namespace malnet::store {

inline constexpr std::uint32_t kSegmentMagic = 0x4D534731;  // "MSG1"
inline constexpr std::uint8_t kSegmentVersion = 1;
/// Byte size of the fixed header (everything before the index block):
/// magic, version, kind, fingerprint, shard_index, shard_count, seed,
/// index_len, payload_len.
inline constexpr std::size_t kSegmentHeaderSize = 4 + 1 + 1 + 8 + 4 + 4 + 8 + 4 + 4;

/// What produced a segment. kShard segments carry one seed-shard of a
/// `--store` study (resume skips them); kIngest segments carry a whole
/// merged batch appended by `malnetctl ingest`; kCompacted segments are the
/// deterministic merge `compact` leaves behind.
enum class SegmentKind : std::uint8_t { kShard = 0, kIngest = 1, kCompacted = 2 };

[[nodiscard]] std::string to_string(SegmentKind kind);
[[nodiscard]] std::optional<SegmentKind> segment_kind_from_string(std::string_view s);

/// Per-vulnerability exploit-attribution rollup.
struct ExploitStat {
  std::uint64_t count = 0;
  std::vector<std::int64_t> days;  // sorted distinct observation days

  friend bool operator==(const ExploitStat&, const ExploitStat&) = default;
};

/// The query index. Everything `malnetctl query`/`serve` answers derives
/// from these per-segment rollups, merged across segments exactly the way
/// core::merge_study_results merges the underlying datasets (day lists
/// union, counts add), so index-level answers always match what a
/// monolithic StudyResults would report.
struct SegmentIndex {
  std::int64_t min_day = 0;
  std::int64_t max_day = -1;  // max < min encodes "no dated records"
  std::uint64_t samples = 0;
  std::uint64_t exploits = 0;
  std::uint64_t ddos = 0;
  std::uint64_t degraded = 0;
  /// proto::Family value -> sample count.
  std::map<std::uint8_t, std::uint64_t> family_counts;
  /// Every D-C2s address -> its (possibly empty) sorted live-day list.
  /// Keys are the full address set, so distinct-C2 counts are exact.
  std::map<std::string, std::vector<std::int64_t>> c2_live_days;
  /// vulndb::VulnId value -> rollup.
  std::map<std::uint8_t, ExploitStat> exploit_stats;

  friend bool operator==(const SegmentIndex&, const SegmentIndex&) = default;

  /// Folds `other` in: counts add, day lists union sorted. Commutative and
  /// associative, mirroring merge_study_results.
  void merge(const SegmentIndex& other);

  /// Live-C2 time series: day -> number of addresses live that day.
  [[nodiscard]] std::map<std::int64_t, std::uint64_t> liveness_series() const;
  [[nodiscard]] std::uint64_t distinct_c2s() const { return c2_live_days.size(); }
};

[[nodiscard]] SegmentIndex build_index(const core::StudyResults& results);
void encode_index(util::ByteWriter& w, const SegmentIndex& index);
/// Throws util::TruncatedInput on malformed input.
[[nodiscard]] SegmentIndex decode_index(util::ByteReader& r);

/// Identity of a segment as recorded in its header and the manifest.
/// index_len/payload_len are filled by encode_segment.
struct SegmentHeader {
  SegmentKind kind = SegmentKind::kShard;
  std::uint64_t fingerprint = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t seed = 0;
  std::uint32_t index_len = 0;
  std::uint32_t payload_len = 0;
};

/// Encodes a whole segment file (header + index + MDS payload); the
/// header's length fields are computed here.
[[nodiscard]] util::Bytes encode_segment(SegmentHeader header,
                                         const SegmentIndex& index,
                                         util::BytesView payload);

/// Parses and validates the fixed header (first kSegmentHeaderSize bytes).
/// Returns nullopt on bad magic/version or a short buffer.
[[nodiscard]] std::optional<SegmentHeader> decode_segment_header(util::BytesView data);

/// 256-bit content hash as 64 hex chars — four seeded FNV-1a lanes, stable
/// across platforms. Segment files are named by its first 16 characters.
[[nodiscard]] std::string content_hash(util::BytesView data);

}  // namespace malnet::store
