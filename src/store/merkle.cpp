#include "store/merkle.hpp"

#include <algorithm>
#include <stdexcept>

#include "store/segment.hpp"
#include "util/bytes.hpp"

namespace malnet::store {

namespace {

constexpr std::string_view kHexDigits = "0123456789abcdef";

}  // namespace

bool is_hex_lower(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

std::string set_hash(const std::string* begin, const std::string* end) {
  std::string joined;
  joined.reserve(static_cast<std::size_t>(end - begin) * kHashHexLen);
  for (const auto* it = begin; it != end; ++it) joined += *it;
  return content_hash(util::BytesView{
      reinterpret_cast<const std::uint8_t*>(joined.data()), joined.size()});
}

SegmentSet::SegmentSet(std::vector<std::string> hashes)
    : hashes_(std::move(hashes)) {
  for (const auto& h : hashes_) {
    if (h.size() != kHashHexLen || !is_hex_lower(h)) {
      throw std::invalid_argument("merkle: bad segment hash '" + h + "'");
    }
  }
  std::sort(hashes_.begin(), hashes_.end());
  hashes_.erase(std::unique(hashes_.begin(), hashes_.end()), hashes_.end());
}

bool SegmentSet::contains(std::string_view hash) const {
  return std::binary_search(hashes_.begin(), hashes_.end(), hash);
}

std::pair<const std::string*, const std::string*> SegmentSet::range(
    std::string_view prefix) const {
  if (prefix.size() > kHashHexLen || !is_hex_lower(prefix)) {
    return {hashes_.data(), hashes_.data()};
  }
  // Every member under `prefix` compares >= prefix and < prefix+"g"
  // ('g' is above the hex alphabet), so two lower_bounds delimit the range.
  const auto lo = std::lower_bound(hashes_.begin(), hashes_.end(), prefix);
  const std::string above = std::string(prefix) + 'g';
  const auto hi = std::lower_bound(lo, hashes_.end(), above);
  return {hashes_.data() + (lo - hashes_.begin()),
          hashes_.data() + (hi - hashes_.begin())};
}

std::vector<std::string> SegmentSet::under(std::string_view prefix) const {
  const auto [lo, hi] = range(prefix);
  return {lo, hi};
}

TreeNodeSummary SegmentSet::summarize(std::string_view prefix) const {
  TreeNodeSummary node;
  const auto [lo, hi] = range(prefix);
  node.count = static_cast<std::uint64_t>(hi - lo);
  node.hash = set_hash(lo, hi);
  if (prefix.size() >= kHashHexLen) return node;  // leaf level: no children
  const auto* it = lo;
  for (std::size_t d = 0; d < kHexDigits.size(); ++d) {
    // Members are sorted, so each digit's bucket is a contiguous run.
    const auto* start = it;
    while (it != hi && (*it)[prefix.size()] == kHexDigits[d]) ++it;
    if (it == start) continue;
    TreeChildSummary child;
    child.digit = static_cast<std::uint8_t>(d);
    child.count = static_cast<std::uint64_t>(it - start);
    child.hash = set_hash(start, it);
    node.children.push_back(std::move(child));
  }
  return node;
}

}  // namespace malnet::store
