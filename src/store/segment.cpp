#include "store/segment.hpp"

#include <algorithm>
#include <iterator>

namespace malnet::store {

namespace {

/// Sorted union of two ascending day lists (same contract as the C2 merge
/// in core::merge_study_results).
std::vector<std::int64_t> union_days(const std::vector<std::int64_t>& a,
                                     const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void put_days(util::ByteWriter& w, const std::vector<std::int64_t>& days) {
  w.u32(static_cast<std::uint32_t>(days.size()));
  for (const auto d : days) w.u64(static_cast<std::uint64_t>(d));
}

std::vector<std::int64_t> get_days(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::int64_t>(r.u64()));
  }
  return out;
}

}  // namespace

std::string to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kShard: return "shard";
    case SegmentKind::kIngest: return "ingest";
    case SegmentKind::kCompacted: return "compacted";
  }
  return "unknown";
}

std::optional<SegmentKind> segment_kind_from_string(std::string_view s) {
  if (s == "shard") return SegmentKind::kShard;
  if (s == "ingest") return SegmentKind::kIngest;
  if (s == "compacted") return SegmentKind::kCompacted;
  return std::nullopt;
}

void SegmentIndex::merge(const SegmentIndex& other) {
  if (other.max_day >= other.min_day) {
    if (max_day < min_day) {
      min_day = other.min_day;
      max_day = other.max_day;
    } else {
      min_day = std::min(min_day, other.min_day);
      max_day = std::max(max_day, other.max_day);
    }
  }
  samples += other.samples;
  exploits += other.exploits;
  ddos += other.ddos;
  degraded += other.degraded;
  for (const auto& [family, n] : other.family_counts) family_counts[family] += n;
  for (const auto& [addr, days] : other.c2_live_days) {
    auto [it, inserted] = c2_live_days.try_emplace(addr, days);
    if (!inserted) it->second = union_days(it->second, days);
  }
  for (const auto& [vuln, stat] : other.exploit_stats) {
    auto [it, inserted] = exploit_stats.try_emplace(vuln, stat);
    if (!inserted) {
      it->second.count += stat.count;
      it->second.days = union_days(it->second.days, stat.days);
    }
  }
}

std::map<std::int64_t, std::uint64_t> SegmentIndex::liveness_series() const {
  std::map<std::int64_t, std::uint64_t> series;
  for (const auto& [addr, days] : c2_live_days) {
    for (const auto d : days) ++series[d];
  }
  return series;
}

SegmentIndex build_index(const core::StudyResults& results) {
  SegmentIndex index;
  index.samples = results.d_samples.size();
  index.exploits = results.d_exploits.size();
  index.ddos = results.d_ddos.size();
  index.degraded = results.degraded.size();

  const auto note_day = [&index](std::int64_t day) {
    if (index.max_day < index.min_day) {
      index.min_day = index.max_day = day;
    } else {
      index.min_day = std::min(index.min_day, day);
      index.max_day = std::max(index.max_day, day);
    }
  };

  for (const auto& s : results.d_samples) {
    ++index.family_counts[static_cast<std::uint8_t>(s.label)];
    note_day(s.day);
  }
  for (const auto& [addr, rec] : results.d_c2s) {
    index.c2_live_days.emplace(addr, rec.live_days);
  }
  for (const auto& e : results.d_exploits) {
    auto& stat = index.exploit_stats[static_cast<std::uint8_t>(e.vuln)];
    ++stat.count;
    stat.days.push_back(e.day);
    note_day(e.day);
  }
  for (auto& [vuln, stat] : index.exploit_stats) {
    std::sort(stat.days.begin(), stat.days.end());
    stat.days.erase(std::unique(stat.days.begin(), stat.days.end()),
                    stat.days.end());
  }
  for (const auto& d : results.d_ddos) note_day(d.day);
  return index;
}

void encode_index(util::ByteWriter& w, const SegmentIndex& index) {
  w.u64(static_cast<std::uint64_t>(index.min_day));
  w.u64(static_cast<std::uint64_t>(index.max_day));
  w.u64(index.samples);
  w.u64(index.exploits);
  w.u64(index.ddos);
  w.u64(index.degraded);
  w.u32(static_cast<std::uint32_t>(index.family_counts.size()));
  for (const auto& [family, n] : index.family_counts) {
    w.u8(family);
    w.u64(n);
  }
  w.u32(static_cast<std::uint32_t>(index.c2_live_days.size()));
  for (const auto& [addr, days] : index.c2_live_days) {
    w.lp16(addr);
    put_days(w, days);
  }
  w.u32(static_cast<std::uint32_t>(index.exploit_stats.size()));
  for (const auto& [vuln, stat] : index.exploit_stats) {
    w.u8(vuln);
    w.u64(stat.count);
    put_days(w, stat.days);
  }
}

SegmentIndex decode_index(util::ByteReader& r) {
  SegmentIndex index;
  index.min_day = static_cast<std::int64_t>(r.u64());
  index.max_day = static_cast<std::int64_t>(r.u64());
  index.samples = r.u64();
  index.exploits = r.u64();
  index.ddos = r.u64();
  index.degraded = r.u64();
  const std::uint32_t n_families = r.u32();
  for (std::uint32_t i = 0; i < n_families; ++i) {
    const std::uint8_t family = r.u8();
    index.family_counts[family] = r.u64();
  }
  const std::uint32_t n_addrs = r.u32();
  for (std::uint32_t i = 0; i < n_addrs; ++i) {
    std::string addr = util::to_string(r.lp16());
    index.c2_live_days.emplace(std::move(addr), get_days(r));
  }
  const std::uint32_t n_vulns = r.u32();
  for (std::uint32_t i = 0; i < n_vulns; ++i) {
    const std::uint8_t vuln = r.u8();
    ExploitStat stat;
    stat.count = r.u64();
    stat.days = get_days(r);
    index.exploit_stats.emplace(vuln, std::move(stat));
  }
  return index;
}

util::Bytes encode_segment(SegmentHeader header, const SegmentIndex& index,
                           util::BytesView payload) {
  util::ByteWriter iw;
  encode_index(iw, index);
  const auto& index_bytes = iw.bytes();
  header.index_len = static_cast<std::uint32_t>(index_bytes.size());
  header.payload_len = static_cast<std::uint32_t>(payload.size());

  util::ByteWriter w;
  w.u32(kSegmentMagic);
  w.u8(kSegmentVersion);
  w.u8(static_cast<std::uint8_t>(header.kind));
  w.u64(header.fingerprint);
  w.u32(header.shard_index);
  w.u32(header.shard_count);
  w.u64(header.seed);
  w.u32(header.index_len);
  w.u32(header.payload_len);
  w.raw(util::BytesView{index_bytes});
  w.raw(payload);
  return w.take();
}

std::optional<SegmentHeader> decode_segment_header(util::BytesView data) {
  if (data.size() < kSegmentHeaderSize) return std::nullopt;
  util::ByteReader r(data);
  if (r.u32() != kSegmentMagic) return std::nullopt;
  if (r.u8() != kSegmentVersion) return std::nullopt;
  SegmentHeader header;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(SegmentKind::kCompacted)) return std::nullopt;
  header.kind = static_cast<SegmentKind>(kind);
  header.fingerprint = r.u64();
  header.shard_index = r.u32();
  header.shard_count = r.u32();
  header.seed = r.u64();
  header.index_len = r.u32();
  header.payload_len = r.u32();
  return header;
}

std::string content_hash(util::BytesView data) {
  // Four FNV-1a lanes with distinct offset bases -> 256 bits of stable id
  // (same construction as mal::digest; collision-resistance is not a goal,
  // torn-write detection is).
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (int lane = 0; lane < 4; ++lane) {
    std::uint64_t h =
        0xcbf29ce484222325ULL ^ (0x9E3779B97F4A7C15ULL * (lane + 1));
    for (const auto b : data) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    for (int i = 15; i >= 0; --i) {
      out.push_back(kHex[(h >> (i * 4)) & 0xF]);
    }
  }
  return out;
}

}  // namespace malnet::store
