#include "store/store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "profile/registry.hpp"
#include "report/dataset_io.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace malnet::store {

namespace fs = std::filesystem;

namespace {

util::Bytes read_whole_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("store: cannot open " + path);
  return util::Bytes((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(15 - i)] = kHex[(v >> (i * 4)) & 0xF];
  }
  return out;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::stoull(s, nullptr, 16);
}

/// Cross-process writer/GC exclusion on DIR/LOCK. Writers (commit, import,
/// compact) hold the lock shared over their segment-write → manifest-write
/// window; collect_garbage() takes it exclusive and non-blocking, so it
/// never collects a file another process is mid-way through publishing.
/// Each guard opens its own descriptor: flock() converts rather than stacks
/// on a shared open file description, which would let one guard silently
/// drop another's hold.
class DirLock {
 public:
  DirLock(const std::string& path, int operation) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    if (::flock(fd_, operation) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~DirLock() {
    if (fd_ >= 0) ::close(fd_);  // closing the descriptor releases the lock
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  [[nodiscard]] bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// d_pc2 carries data only when some shard actually ran a probe campaign.
bool campaign_empty(const core::ProbeCampaignResult& pc) {
  return pc.rounds == 0 && pc.raster.empty() && pc.scout_probes == 0 &&
         pc.weapon_runs == 0 && pc.banner_filtered == 0;
}

}  // namespace

Store::Store(std::string dir) : dir_(std::move(dir)) {
  // The private registry merges into callers' global snapshots; claiming
  // the namespace makes cross-registry name collisions impossible instead
  // of silently shadowed (obs::Registry::set_namespace).
  registry_.set_namespace("store.");
  std::error_code ec;
  fs::create_directories(dir_ + "/segments", ec);
  if (ec) {
    throw std::runtime_error("store: cannot create " + dir_ + "/segments: " +
                             ec.message());
  }
  replay_manifest();
  collect_garbage();
}

std::vector<SegmentMeta> Store::segments() const {
  std::lock_guard lock(mu_);
  return segments_;
}

void Store::replay_manifest() {
  if (!fs::exists(manifest_path())) return;  // brand-new store
  std::ifstream f(manifest_path());
  if (!f) throw std::runtime_error("store: cannot open " + manifest_path());
  std::string line;
  if (!std::getline(f, line) || line != "malnet-store 1") {
    throw std::runtime_error("store: corrupt manifest header in " +
                             manifest_path());
  }
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string tag, kind_word;
    SegmentMeta meta;
    std::string fp_hex, seed_hex;
    in >> tag >> meta.seq >> kind_word >> fp_hex >> meta.shard_count >>
        meta.shard_index >> seed_hex >> meta.bytes >> meta.hash >> meta.file;
    const auto kind = segment_kind_from_string(kind_word);
    if (!in || tag != "segment" || !kind || meta.hash.size() != 64) {
      throw std::runtime_error("store: corrupt manifest line: " + line);
    }
    meta.kind = *kind;
    meta.fingerprint = parse_hex64(fp_hex);
    meta.seed = parse_hex64(seed_hex);
    next_seq_ = std::max(next_seq_, meta.seq + 1);
    segments_.push_back(std::move(meta));
  }
}

void Store::write_manifest_locked() {
  std::ostringstream out;
  out << "malnet-store 1\n";
  for (const auto& m : segments_) {
    out << "segment " << m.seq << ' ' << to_string(m.kind) << ' '
        << hex64(m.fingerprint) << ' ' << m.shard_count << ' ' << m.shard_index
        << ' ' << hex64(m.seed) << ' ' << m.bytes << ' ' << m.hash << ' '
        << m.file << '\n';
  }
  util::write_file_atomic(manifest_path(), std::string_view(out.str()));
}

Store::Health Store::health() const {
  Health h;
  std::size_t expected = 0;
  {
    std::lock_guard lock(mu_);
    expected = segments_.size();
  }
  try {
    if (!fs::exists(manifest_path())) {
      if (expected == 0) {
        h.ok = true;
        h.detail = "ok (empty store)";
      } else {
        h.detail = "manifest missing with " + std::to_string(expected) +
                   " live segments";
      }
      return h;
    }
    std::ifstream f(manifest_path());
    std::string line;
    if (!f || !std::getline(f, line) || line != "malnet-store 1") {
      h.detail = "manifest unreadable or bad header";
      return h;
    }
    while (std::getline(f, line)) {
      if (line.empty()) continue;
      if (line.rfind("segment ", 0) != 0) {
        h.detail = "corrupt manifest line";
        return h;
      }
      ++h.segments;
    }
    if (h.segments < expected) {
      h.detail = "manifest lists " + std::to_string(h.segments) +
                 " segments, memory has " + std::to_string(expected);
      return h;
    }
    h.ok = true;
    h.detail = "ok";
  } catch (const std::exception& e) {
    h.detail = std::string("probe failed: ") + e.what();
  }
  return h;
}

void Store::collect_garbage() {
  std::lock_guard lock(mu_);
  // An unreferenced segment file is indistinguishable from one a concurrent
  // writer has renamed into place but not yet published in MANIFEST, so GC
  // may only run while no writer holds the directory lock. Skipping is safe:
  // real crash litter has no lock holder and the next open collects it.
  DirLock gc_lock(lock_path(), LOCK_EX | LOCK_NB);
  if (!gc_lock.held()) {
    registry_.counter("store.gc_skipped").inc();
    util::log_line(util::LogLevel::kInfo, "store",
                   "gc skipped in " + dir_ + " (writers active)");
    return;
  }
  std::uint64_t removed = 0;
  std::error_code ec;
  // Stale manifest temps in the root; stale segment temps and unreferenced
  // segment files (a crash between the segment rename and the manifest
  // rename) under segments/.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const auto name = entry.path().filename().string();
    if (entry.is_regular_file() && util::is_atomic_temp_name(name)) {
      if (fs::remove(entry.path(), ec)) ++removed;
    }
  }
  for (const auto& entry : fs::directory_iterator(dir_ + "/segments", ec)) {
    if (!entry.is_regular_file()) continue;
    const auto name = entry.path().filename().string();
    const bool stale_temp = util::is_atomic_temp_name(name);
    const bool referenced =
        std::any_of(segments_.begin(), segments_.end(),
                    [&name](const SegmentMeta& m) { return m.file == name; });
    if (stale_temp || !referenced) {
      if (fs::remove(entry.path(), ec)) ++removed;
    }
  }
  if (removed > 0) {
    registry_.counter("store.orphans_removed").inc(removed);
    util::log_line(util::LogLevel::kInfo, "store",
                   "collected " + std::to_string(removed) +
                       " orphan file(s) in " + dir_);
  }
}

SegmentMeta Store::commit(const core::StudyResults& results, SegmentKind kind,
                          std::uint64_t fingerprint, std::uint32_t shard_index,
                          std::uint32_t shard_count, std::uint64_t seed) {
  SegmentHeader header;
  header.kind = kind;
  header.fingerprint = fingerprint;
  header.shard_index = shard_index;
  header.shard_count = shard_count;
  header.seed = seed;
  const auto payload = report::serialize_datasets(results);
  const auto bytes =
      encode_segment(header, build_index(results), util::BytesView{payload});
  const auto hash = content_hash(util::BytesView{bytes});
  const std::string file = hash.substr(0, 16) + ".seg";

  std::lock_guard lock(mu_);
  // Idempotence: identical content is already durable under the same name.
  for (const auto& m : segments_) {
    if (m.hash == hash) return m;
  }
  // A shard slot being re-committed with different content (e.g. the same
  // store reused for a differently-seeded run of the same fingerprint slot)
  // replaces its old entry, never duplicates it.
  std::string replaced_file;
  if (kind == SegmentKind::kShard) {
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
      if (it->kind == kind && it->fingerprint == fingerprint &&
          it->shard_index == shard_index && it->shard_count == shard_count) {
        replaced_file = it->file;
        segments_.erase(it);
        break;
      }
    }
  }

  // Durability order: segment bytes first, manifest second. Each step is
  // individually atomic; a crash in the gap leaves an orphan the next open
  // collects. The shared lock keeps a concurrent opener's GC out of that gap.
  DirLock write_lock(lock_path(), LOCK_SH);
  util::write_file_atomic(segment_path(file), util::BytesView{bytes});
  SegmentMeta meta;
  meta.seq = next_seq_++;
  meta.kind = kind;
  meta.fingerprint = fingerprint;
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  meta.seed = seed;
  meta.bytes = bytes.size();
  meta.hash = hash;
  meta.file = file;
  segments_.push_back(meta);
  write_manifest_locked();
  if (!replaced_file.empty() && replaced_file != file) {
    std::error_code ec;
    fs::remove(segment_path(replaced_file), ec);
  }
  registry_.counter("store.segments_written").inc();
  registry_.counter("store.bytes_written").inc(bytes.size());
  util::log_line(util::LogLevel::kInfo, "store",
                 "committed " + to_string(kind) + " segment " + file + " (" +
                     std::to_string(bytes.size()) + " bytes, shard " +
                     std::to_string(shard_index) + "/" +
                     std::to_string(shard_count) + ")");
  return meta;
}

std::optional<core::StudyResults> Store::load_verified_shard(
    std::uint64_t fingerprint, std::uint32_t shard_index,
    std::uint32_t shard_count) {
  std::optional<SegmentMeta> meta;
  {
    std::lock_guard lock(mu_);
    for (const auto& m : segments_) {
      if (m.kind == SegmentKind::kShard && m.fingerprint == fingerprint &&
          m.shard_index == shard_index && m.shard_count == shard_count) {
        meta = m;
        break;
      }
    }
  }
  if (!meta) return std::nullopt;
  try {
    return load_payload(*meta);
  } catch (const std::exception& e) {
    registry_.counter("store.verify_failures").inc();
    util::log_line(util::LogLevel::kWarn, "store",
                   "segment " + meta->file + " failed verification (" +
                       e.what() + "); shard " + std::to_string(shard_index) +
                       " will be re-run");
    return std::nullopt;
  }
}

core::StudyResults Store::load_payload(const SegmentMeta& meta) {
  const auto bytes = read_whole_file(segment_path(meta.file));
  registry_.counter("store.payload_bytes_read").inc(bytes.size());
  if (content_hash(util::BytesView{bytes}) != meta.hash) {
    throw std::runtime_error("store: content hash mismatch for " + meta.file);
  }
  const auto header = decode_segment_header(util::BytesView{bytes});
  if (!header) {
    throw std::runtime_error("store: bad segment header in " + meta.file);
  }
  const std::size_t payload_off = kSegmentHeaderSize + header->index_len;
  if (payload_off + header->payload_len != bytes.size()) {
    throw std::runtime_error("store: inconsistent lengths in " + meta.file);
  }
  auto parsed = report::parse_datasets(
      util::BytesView{bytes}.subspan(payload_off, header->payload_len));
  if (!parsed) {
    throw std::runtime_error("store: unparsable payload in " + meta.file);
  }
  return std::move(*parsed);
}

SegmentIndex Store::load_index(const SegmentMeta& meta) {
  std::ifstream f(segment_path(meta.file), std::ios::binary);
  if (!f) throw std::runtime_error("store: cannot open " + segment_path(meta.file));
  util::Bytes head(kSegmentHeaderSize);
  f.read(reinterpret_cast<char*>(head.data()),
         static_cast<std::streamsize>(head.size()));
  if (static_cast<std::size_t>(f.gcount()) != head.size()) {
    throw std::runtime_error("store: short header in " + meta.file);
  }
  const auto header = decode_segment_header(util::BytesView{head});
  if (!header) {
    throw std::runtime_error("store: bad segment header in " + meta.file);
  }
  util::Bytes index_bytes(header->index_len);
  f.read(reinterpret_cast<char*>(index_bytes.data()),
         static_cast<std::streamsize>(index_bytes.size()));
  if (static_cast<std::size_t>(f.gcount()) != index_bytes.size()) {
    throw std::runtime_error("store: short index in " + meta.file);
  }
  registry_.counter("store.segments_opened").inc();
  registry_.counter("store.index_bytes_read")
      .inc(kSegmentHeaderSize + index_bytes.size());
  util::ByteReader r(util::BytesView{index_bytes});
  auto index = decode_index(r);
  if (!r.done()) {
    throw std::runtime_error("store: trailing index bytes in " + meta.file);
  }
  return index;
}

std::vector<std::string> Store::segment_hashes() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> hashes;
  hashes.reserve(segments_.size());
  for (const auto& m : segments_) hashes.push_back(m.hash);
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

std::optional<util::Bytes> Store::read_segment_bytes(const std::string& hash) {
  std::optional<SegmentMeta> meta;
  {
    std::lock_guard lock(mu_);
    for (const auto& m : segments_) {
      if (m.hash == hash) {
        meta = m;
        break;
      }
    }
  }
  if (!meta) return std::nullopt;
  auto bytes = read_whole_file(segment_path(meta->file));
  if (content_hash(util::BytesView{bytes}) != meta->hash) {
    registry_.counter("store.verify_failures").inc();
    throw std::runtime_error("store: content hash mismatch for " + meta->file);
  }
  registry_.counter("store.segment_bytes_read").inc(bytes.size());
  return bytes;
}

ImportResult Store::import_segment(util::BytesView bytes) {
  // Full validation up front: nothing reaches the write path unless it is a
  // complete, parsable segment. The content hash is computed over exactly
  // the bytes written, so a verified import is indistinguishable from a
  // local commit of the same content.
  const auto header = decode_segment_header(bytes);
  if (!header) {
    throw std::invalid_argument("store: import: bad segment header");
  }
  const std::size_t payload_off = kSegmentHeaderSize + header->index_len;
  if (payload_off + header->payload_len != bytes.size()) {
    throw std::invalid_argument("store: import: inconsistent segment lengths");
  }
  try {
    util::ByteReader r(bytes.subspan(kSegmentHeaderSize, header->index_len));
    (void)decode_index(r);
    if (!r.done()) {
      throw std::invalid_argument("store: import: trailing index bytes");
    }
  } catch (const util::TruncatedInput&) {
    throw std::invalid_argument("store: import: truncated index");
  }
  if (!report::parse_datasets(bytes.subspan(payload_off, header->payload_len))) {
    throw std::invalid_argument("store: import: unparsable payload");
  }
  const auto hash = content_hash(bytes);
  const std::string file = hash.substr(0, 16) + ".seg";

  std::lock_guard lock(mu_);
  for (const auto& m : segments_) {
    if (m.hash == hash) return {m, false};
  }
  // Unlike commit(), an import never displaces an existing shard slot:
  // replication is a grow-only set union, so replica contents cannot depend
  // on the order segments arrive in.
  DirLock write_lock(lock_path(), LOCK_SH);
  util::write_file_atomic(segment_path(file), bytes);
  SegmentMeta meta;
  meta.seq = next_seq_++;
  meta.kind = header->kind;
  meta.fingerprint = header->fingerprint;
  meta.shard_index = header->shard_index;
  meta.shard_count = header->shard_count;
  meta.seed = header->seed;
  meta.bytes = bytes.size();
  meta.hash = hash;
  meta.file = file;
  segments_.push_back(meta);
  write_manifest_locked();
  registry_.counter("store.segments_imported").inc();
  registry_.counter("store.bytes_imported").inc(bytes.size());
  util::log_line(util::LogLevel::kInfo, "store",
                 "imported " + to_string(meta.kind) + " segment " + file +
                     " (" + std::to_string(bytes.size()) + " bytes)");
  return {meta, true};
}

SegmentMeta Store::compact() {
  std::lock_guard lock(mu_);
  if (segments_.empty()) {
    throw std::runtime_error("store: nothing to compact in " + dir_);
  }
  if (segments_.size() == 1) return segments_.front();

  // Merge in content-hash order — a pure function of the segment *set*,
  // never of seq, completion or directory order — so replicas that converged
  // on the same set through any interleaving of commits and imports compact
  // to byte-identical artifacts (§14). merge_study_results keeps part 0's
  // probe campaign (only one shard runs it), so pick the campaign from the
  // first hash-ordered part that actually has one — also set-determined.
  std::vector<SegmentMeta> ordered = segments_;
  std::sort(ordered.begin(), ordered.end(),
            [](const SegmentMeta& a, const SegmentMeta& b) {
              return a.hash < b.hash;
            });
  std::vector<core::StudyResults> parts;
  std::uint64_t merged_bytes = 0;
  parts.reserve(ordered.size());
  std::optional<core::ProbeCampaignResult> campaign;
  for (const auto& m : ordered) {
    parts.push_back(load_payload(m));
    merged_bytes += m.bytes;
    if (!campaign && !campaign_empty(parts.back().d_pc2)) {
      campaign = parts.back().d_pc2;
    }
  }
  auto merged = core::merge_study_results(std::move(parts));
  if (campaign) merged.d_pc2 = std::move(*campaign);

  SegmentHeader header;
  header.kind = SegmentKind::kCompacted;
  const auto payload = report::serialize_datasets(merged);
  const auto bytes =
      encode_segment(header, build_index(merged), util::BytesView{payload});
  const auto hash = content_hash(util::BytesView{bytes});
  const std::string file = hash.substr(0, 16) + ".seg";

  const std::vector<SegmentMeta> old = std::move(segments_);
  DirLock write_lock(lock_path(), LOCK_SH);
  util::write_file_atomic(segment_path(file), util::BytesView{bytes});
  SegmentMeta meta;
  // Seq restarts at 1: after compaction the manifest, like the segment, is
  // a function of the merged set alone, so converged replicas byte-compare.
  meta.seq = 1;
  meta.kind = SegmentKind::kCompacted;
  meta.bytes = bytes.size();
  meta.hash = hash;
  meta.file = file;
  segments_ = {meta};
  next_seq_ = 2;
  write_manifest_locked();
  for (const auto& m : old) {
    if (m.file != file) {
      std::error_code ec;
      fs::remove(segment_path(m.file), ec);
    }
  }
  registry_.counter("store.segments_written").inc();
  registry_.counter("store.bytes_written").inc(bytes.size());
  registry_.counter("store.segments_compacted").inc(old.size());
  registry_.counter("store.bytes_compacted").inc(merged_bytes);
  util::log_line(util::LogLevel::kInfo, "store",
                 "compacted " + std::to_string(old.size()) + " segment(s) (" +
                     std::to_string(merged_bytes) + " bytes) into " + file);
  return meta;
}

std::uint64_t study_fingerprint(const core::ParallelStudyConfig& cfg) {
  util::ByteWriter w;
  w.u32(kManifestVersion);  // bumping invalidates fingerprints across format changes
  w.u64(cfg.base.seed);
  w.u32(static_cast<std::uint32_t>(cfg.shards));
  w.u32(static_cast<std::uint32_t>(cfg.base.world.total_samples));
  w.u8(static_cast<std::uint8_t>(cfg.base.chaos));
  w.u64(cfg.base.chaos_seed);
  w.u64(std::bit_cast<std::uint64_t>(cfg.base.loss));
  w.u8(cfg.base.run_probe_campaign ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(cfg.base.probe_rounds));
  w.u64(static_cast<std::uint64_t>(cfg.base.observe_duration.us));
  w.u64(static_cast<std::uint64_t>(cfg.base.live_duration.us));
  w.u64(static_cast<std::uint64_t>(cfg.base.probe_duration.us));
  w.u32(static_cast<std::uint32_t>(cfg.base.handshaker_threshold));
  w.u64(std::bit_cast<std::uint64_t>(cfg.base.pps_threshold));
  w.u32(static_cast<std::uint32_t>(cfg.base.max_candidates_per_sample));
  w.u32(static_cast<std::uint32_t>(cfg.base.max_live_runs_per_c2));
  w.u64(static_cast<std::uint64_t>(cfg.base.requery_day));
  // Family profiles shape every dataset; a changed profile set (or variant
  // routing) must invalidate resume, while reloading byte-identical
  // profiles must not.
  const profile::Registry* reg = cfg.base.profiles            ? cfg.base.profiles.get()
                                 : cfg.base.world.profiles != nullptr
                                     ? cfg.base.world.profiles
                                     : &profile::Registry::builtin();
  w.u64(reg->set_hash());
  w.lp16(cfg.base.world.variant_name);
  w.u64(std::bit_cast<std::uint64_t>(cfg.base.world.variant_fraction));
  return util::fnv1a64(util::to_string(util::BytesView{w.bytes()}));
}

core::StudyResults run_store_study(core::ParallelStudyConfig cfg, Store& store,
                                   bool resume) {
  const std::uint64_t fingerprint = study_fingerprint(cfg);
  const int shards = cfg.shards;
  const std::uint64_t base_seed = cfg.base.seed;
  if (resume) {
    // Counters are registry-owned; the references outlive the study.
    auto& hits = store.registry().counter("store.resume_hits");
    auto& misses = store.registry().counter("store.resume_misses");
    cfg.shard_preload = [&store, &hits, &misses, fingerprint,
                         shards](int shard) -> std::optional<core::StudyResults> {
      auto loaded = store.load_verified_shard(
          fingerprint, static_cast<std::uint32_t>(shard),
          static_cast<std::uint32_t>(shards));
      (loaded ? hits : misses).inc();
      if (loaded) {
        util::log_line(util::LogLevel::kInfo, "store",
                       "resume: shard " + std::to_string(shard) +
                           " verified, skipping execution");
      }
      return loaded;
    };
  }
  cfg.on_shard_complete = [&store, fingerprint, shards, base_seed](
                              int shard, const core::StudyResults& results) {
    store.commit(results, SegmentKind::kShard, fingerprint,
                 static_cast<std::uint32_t>(shard),
                 static_cast<std::uint32_t>(shards),
                 core::shard_seed(base_seed, shards, shard));
  };
  return core::ParallelStudy(std::move(cfg)).run();
}

}  // namespace malnet::store
