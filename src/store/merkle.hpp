// Hash-tree summary over a store's segment-hash set (DESIGN.md §14).
//
// Replication (malnet::sync) needs to compute the set difference between
// two stores' segment sets without shipping either set wholesale. The
// monotone/netsync idea: summarize the sorted set of content hashes as a
// 16-way radix tree keyed by successive hex characters, where every node
// carries a hash of its member set. Two stores compare node hashes top-down
// and only descend into subtrees that differ, so the number of exchanged
// summaries is proportional to the size of the difference, not the size of
// the stores.
//
// The node hash is content_hash() over the concatenation of the node's
// member hashes in sorted order. Because members are unique and sorted,
// node-hash equality is set equality (up to hash collisions, the same
// assumption the store itself already makes), and the summary is a pure
// function of the set — independent of commit order, seq numbers or
// manifest history.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace malnet::store {

/// Length of a full segment content hash in hex characters.
inline constexpr std::size_t kHashHexLen = 64;

/// One child of a tree node: the next hex character under the node's
/// prefix, and the summary of the members below it.
struct TreeChildSummary {
  std::uint8_t digit = 0;  // 0..15, the hex character value
  std::uint64_t count = 0;
  std::string hash;  // set hash of the members under prefix+digit

  friend bool operator==(const TreeChildSummary&, const TreeChildSummary&) = default;
};

/// Summary of the subtree at some prefix: member count, set hash, and one
/// entry per non-empty child. Children of an empty subtree are empty.
struct TreeNodeSummary {
  std::uint64_t count = 0;
  std::string hash;
  std::vector<TreeChildSummary> children;

  friend bool operator==(const TreeNodeSummary&, const TreeNodeSummary&) = default;
};

/// True iff `s` is entirely lowercase hex (the alphabet content hashes use).
[[nodiscard]] bool is_hex_lower(std::string_view s);

/// Set hash of a sorted, unique range of member hashes: content_hash over
/// their concatenation. The empty set has a well-defined constant hash.
[[nodiscard]] std::string set_hash(const std::string* begin, const std::string* end);

/// An immutable snapshot of a store's segment-hash set with prefix-range
/// queries and tree summaries. Hashes are validated (kHashHexLen lowercase
/// hex), sorted and deduplicated on construction.
class SegmentSet {
 public:
  explicit SegmentSet(std::vector<std::string> hashes);

  [[nodiscard]] const std::vector<std::string>& hashes() const { return hashes_; }
  [[nodiscard]] std::uint64_t size() const { return hashes_.size(); }
  [[nodiscard]] bool contains(std::string_view hash) const;

  /// Members whose hash starts with `prefix` (sorted). An over-long or
  /// non-hex prefix yields an empty list.
  [[nodiscard]] std::vector<std::string> under(std::string_view prefix) const;

  /// Tree summary of the subtree at `prefix` (prefix "" = the root).
  [[nodiscard]] TreeNodeSummary summarize(std::string_view prefix) const;

 private:
  /// Iterator range of members under `prefix`.
  [[nodiscard]] std::pair<const std::string*, const std::string*> range(
      std::string_view prefix) const;

  std::vector<std::string> hashes_;  // sorted, unique
};

}  // namespace malnet::store
