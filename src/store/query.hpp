// Query/serving layer over a malnet::store directory (DESIGN.md §12).
//
// Answers come from per-segment indexes merged in memory — the MDS
// payloads are never read (store.payload_bytes_read stays zero across a
// query session), so a year-long multi-segment store answers aggregate
// questions in milliseconds from a few KB per segment.
//
// Query language (one query per line, shared by `malnetctl query`, the
// `serve` stdin loop, and the concurrent TCP server in src/serve,
// DESIGN.md §13):
//   totals                 sample/C2/exploit/DDoS/degraded counts + day span
//   families               per-family sample counts
//   c2-liveness            live-C2 time series: "<day> <live count>" lines
//   c2 <address>           live days for one C2 address
//   exploits               per-vulnerability attribution rollup
//   exploit <cve-or-name>  one vulnerability's count + observation days
//   segments               manifest listing
//   help                   this list
// Unknown queries answer "err ..." and never throw.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "store/store.hpp"

namespace malnet::store {

/// Loads and merges every segment index once, then answers queries against
/// the merged rollup. Each answer updates store.queries and the
/// store.query_latency_us histogram on the store's registry.
class QueryEngine {
 public:
  /// Reads header + index of every manifest segment (partial reads).
  explicit QueryEngine(Store& store);

  /// Answers one query line (no trailing newline). Deterministic for a
  /// given store content; never throws on malformed queries.
  [[nodiscard]] std::string answer(std::string_view line);

  [[nodiscard]] const SegmentIndex& merged() const { return merged_; }

 private:
  Store& store_;
  std::vector<SegmentMeta> metas_;
  SegmentIndex merged_;
};

/// Reads query lines from `in` until EOF or "quit"/"exit", writing each
/// answer followed by a blank line to `out` (flushed per query, so the
/// loop can sit behind a pipe).
void serve_loop(Store& store, std::istream& in, std::ostream& out);

}  // namespace malnet::store
