// malnet::store — crash-safe incremental study store (DESIGN.md §12).
//
// The paper's pipeline is longitudinal: collection and detonation run daily
// for a year and the analyses are continuously re-derived (§1, §5). The
// reproduction's equivalent is a durable, append-only store of study
// output, so a killed run resumes instead of recomputing and new batches
// accumulate next to old ones.
//
// On-disk layout:
//   DIR/MANIFEST            committed-segment journal (atomic replace)
//   DIR/segments/<h16>.seg  immutable content-hashed segments
//
// Commit protocol (the crash-safety argument): a segment's bytes are staged
// with util::write_file_atomic (temp in the same directory + fsync +
// rename), and only then published by atomically replacing MANIFEST the
// same way. A crash before the segment rename leaves a hidden temp; a crash
// between the renames leaves an unreferenced segment file; both are
// garbage-collected on the next open. A crash during either rename leaves
// the previous complete version of that file. The manifest is therefore
// always a consistent list of fully-durable, hash-verifiable segments —
// the invariant `--resume` builds on.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel_study.hpp"
#include "obs/metrics.hpp"
#include "store/segment.hpp"

namespace malnet::store {

inline constexpr std::uint32_t kManifestVersion = 1;

/// One manifest entry. `file` is the name under DIR/segments/, `hash` the
/// full 64-hex content hash of the file bytes (the name is its prefix).
struct SegmentMeta {
  std::uint64_t seq = 0;  // commit sequence; compaction merges in seq order
  SegmentKind kind = SegmentKind::kShard;
  std::uint64_t fingerprint = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t seed = 0;
  std::uint64_t bytes = 0;  // file size
  std::string hash;
  std::string file;
};

/// Result of Store::import_segment: the manifest entry plus whether the
/// segment was new (false = the store already had these exact bytes).
struct ImportResult {
  SegmentMeta meta;
  bool imported = false;
};

/// The store handle. All mutating operations are serialized on an internal
/// mutex, so ParallelStudy workers can commit shards concurrently.
///
/// Cross-process writer/GC discipline (DESIGN.md §14): every commit/import
/// holds a shared flock on DIR/LOCK for its segment-write → manifest-write
/// window, and collect_garbage() only runs when it can take the lock
/// exclusively. A concurrent opener therefore never collects a segment (or
/// its staging temp) that a live writer is mid-way through publishing —
/// after a crash nobody holds the lock, so the next open still collects.
///
/// Metrics (registry()): store.segments_written, store.bytes_written,
/// store.segments_imported / bytes_imported, store.segment_bytes_read,
/// store.resume_hits / resume_misses / verify_failures,
/// store.orphans_removed, store.gc_skipped,
/// store.segments_compacted / bytes_compacted, store.segments_opened,
/// store.index_bytes_read / payload_bytes_read, store.queries and the
/// store.query_latency_us histogram (the one wall-clock quantity — query
/// latency is an operational measurement, not study output, and is never
/// part of a byte-compared artifact).
class Store {
 public:
  /// Opens the store at `dir`, creating the directory tree if absent,
  /// replaying MANIFEST and garbage-collecting crash litter. Throws on a
  /// corrupt manifest (a torn manifest cannot occur under the commit
  /// protocol; corruption means outside interference).
  explicit Store(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  /// Manifest snapshot in commit (seq) order.
  [[nodiscard]] std::vector<SegmentMeta> segments() const;

  /// Commits `results` as one durable segment and returns its entry.
  /// Idempotent: committing byte-identical content returns the existing
  /// entry; re-committing a (kind=shard, fingerprint, shard) slot with
  /// different content replaces the old entry. Thread-safe.
  SegmentMeta commit(const core::StudyResults& results, SegmentKind kind,
                     std::uint64_t fingerprint, std::uint32_t shard_index,
                     std::uint32_t shard_count, std::uint64_t seed);

  /// Resume lookup: the committed shard segment for (fingerprint,
  /// shard_index, shard_count) whose on-disk bytes verify against the
  /// manifest hash. Returns nullopt — never throws — when the segment is
  /// missing, torn, or unparsable, so the caller re-runs the shard.
  [[nodiscard]] std::optional<core::StudyResults> load_verified_shard(
      std::uint64_t fingerprint, std::uint32_t shard_index,
      std::uint32_t shard_count);

  /// Full payload (whole-file read + hash verification). Throws on
  /// corruption.
  [[nodiscard]] core::StudyResults load_payload(const SegmentMeta& meta);

  /// Query index only: reads header + index bytes, never the payload
  /// (store.index_bytes_read counts exactly what was read). Throws on a
  /// malformed header.
  [[nodiscard]] SegmentIndex load_index(const SegmentMeta& meta);

  /// Full 64-hex content hashes of every committed segment, sorted — the
  /// replication view of the store as a content-addressed set (§14).
  [[nodiscard]] std::vector<std::string> segment_hashes() const;

  /// Raw bytes of the segment with this content hash, verified against it.
  /// Nullopt when the hash is not in the manifest; throws on corruption
  /// (manifest references bytes that no longer verify).
  [[nodiscard]] std::optional<util::Bytes> read_segment_bytes(
      const std::string& hash);

  /// Replication import: validates `bytes` as a complete segment (header,
  /// length consistency, index decode, payload parse, content hash) and
  /// journals it under the standard commit protocol. Grow-only by design —
  /// an import never replaces an existing entry, not even a same-slot
  /// shard, so replica state is a monotone set union and sync convergence
  /// cannot depend on arrival order. Idempotent: re-importing bytes the
  /// store already has reports imported=false. Throws on invalid bytes.
  ImportResult import_segment(util::BytesView bytes);

  /// Deterministically merges every segment into a single kCompacted
  /// segment, replaces the manifest and removes the old files. Parts merge
  /// in content-hash order — a pure function of the segment *set* — and the
  /// compacted entry always gets seq 1, so replicas that hold the same set
  /// compact to byte-identical manifests and segment files regardless of
  /// the order syncs arrived in (§14). Query answers are unchanged.
  /// Throws if the store is empty; a single-segment store is a no-op.
  SegmentMeta compact();

  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] obs::MetricsSnapshot metrics() const { return registry_.snapshot(); }

  /// Liveness probe for the admin /healthz endpoint: re-reads the manifest
  /// from disk and checks it still parses and lists at least the in-memory
  /// segment set. Never throws — failures land in `detail`.
  struct Health {
    bool ok = false;
    std::size_t segments = 0;  // manifest entries seen on disk
    std::string detail;        // "ok" or the failure reason
  };
  [[nodiscard]] Health health() const;

 private:
  void replay_manifest();
  /// Serializes segments_ and atomically replaces MANIFEST. Caller holds mu_.
  void write_manifest_locked();
  /// Removes stale atomic-write temps and segment files the manifest does
  /// not reference (crash litter between the two commit renames).
  void collect_garbage();
  [[nodiscard]] std::string manifest_path() const { return dir_ + "/MANIFEST"; }
  [[nodiscard]] std::string lock_path() const { return dir_ + "/LOCK"; }
  [[nodiscard]] std::string segment_path(const std::string& file) const {
    return dir_ + "/segments/" + file;
  }

  std::string dir_;
  mutable std::mutex mu_;
  std::vector<SegmentMeta> segments_;
  std::uint64_t next_seq_ = 1;
  obs::Registry registry_;
};

/// Hash of every CLI-settable knob that changes the study's output (seed,
/// population size, shard count, chaos profile/seed, loss, probe flags,
/// thresholds). Shard segments record it so `--resume` only ever reuses
/// results from an identically-configured study.
[[nodiscard]] std::uint64_t study_fingerprint(const core::ParallelStudyConfig& cfg);

/// Runs a store-backed (optionally resumed) study. Every freshly computed
/// shard is committed as it finishes; with `resume`, shards whose segments
/// verify are loaded instead of re-run. The merged results are byte-
/// identical (as an MDS artifact) to ParallelStudy::run() on the same
/// config, whatever subset of shards was already committed.
[[nodiscard]] core::StudyResults run_store_study(core::ParallelStudyConfig cfg,
                                                 Store& store, bool resume);

}  // namespace malnet::store
