#include "store/query.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>

#include "proto/family.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::store {

namespace {

/// Bucket bounds for store.query_latency_us (µs): sub-100µs merged-index
/// lookups through pathological multi-ms answers.
const std::vector<std::int64_t> kLatencyBounds = {100, 1000, 10000, 100000,
                                                  1000000};

std::vector<std::string> tokenize(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::string render_days(const std::vector<std::int64_t>& days) {
  std::ostringstream out;
  for (std::size_t i = 0; i < days.size(); ++i) {
    if (i > 0) out << ' ';
    out << days[i];
  }
  return out.str();
}

/// Display label for a vulnerability: its CVE when assigned, otherwise the
/// vulndb short name (matches Table 4's identification columns).
std::string vuln_label(std::uint8_t raw) {
  if (raw >= vulndb::kVulnCount) return "vuln#" + std::to_string(raw);
  const auto& v =
      vulndb::VulnDatabase::instance().by_id(static_cast<vulndb::VulnId>(raw));
  return v.cve ? *v.cve : vulndb::to_string(v.id);
}

/// Resolves a query token to a vulnerability: CVE id, vulndb short name,
/// or human name, all case-sensitive.
std::optional<std::uint8_t> vuln_from_token(const std::string& token) {
  const auto& db = vulndb::VulnDatabase::instance();
  if (const auto* v = db.by_cve(token)) {
    return static_cast<std::uint8_t>(v->id);
  }
  for (std::size_t i = 0; i < vulndb::kVulnCount; ++i) {
    const auto id = static_cast<vulndb::VulnId>(i);
    const auto& v = db.by_id(id);
    if (token == vulndb::to_string(id) || token == v.name) {
      return static_cast<std::uint8_t>(i);
    }
  }
  return std::nullopt;
}

constexpr std::string_view kHelp =
    "commands: totals | families | c2-liveness | c2 <address> | exploits | "
    "exploit <cve-or-name> | segments | help";

}  // namespace

QueryEngine::QueryEngine(Store& store) : store_(store), metas_(store.segments()) {
  for (const auto& meta : metas_) {
    merged_.merge(store_.load_index(meta));
  }
}

std::string QueryEngine::answer(std::string_view line) {
  const auto start = std::chrono::steady_clock::now();
  const auto tokens = tokenize(line);
  std::ostringstream out;

  if (tokens.empty() || tokens[0] == "help") {
    out << kHelp;
  } else if (tokens[0] == "totals") {
    out << "samples=" << merged_.samples << " c2s=" << merged_.distinct_c2s()
        << " exploits=" << merged_.exploits << " ddos=" << merged_.ddos
        << " degraded=" << merged_.degraded << " segments=" << metas_.size();
    if (merged_.max_day >= merged_.min_day) {
      out << " days=" << merged_.min_day << ".." << merged_.max_day;
    } else {
      out << " days=none";
    }
  } else if (tokens[0] == "families") {
    bool first = true;
    for (const auto& [family, n] : merged_.family_counts) {
      if (!first) out << '\n';
      first = false;
      const std::string name =
          family < static_cast<std::uint8_t>(proto::kFamilyCount)
              ? proto::to_string(static_cast<proto::Family>(family))
              : "family#" + std::to_string(family);
      out << name << ' ' << n;
    }
    if (first) out << "(no samples)";
  } else if (tokens[0] == "c2-liveness") {
    const auto series = merged_.liveness_series();
    out << "c2-liveness days=" << series.size()
        << " distinct_c2s=" << merged_.distinct_c2s();
    for (const auto& [day, n] : series) out << '\n' << day << ' ' << n;
  } else if (tokens[0] == "c2") {
    if (tokens.size() != 2) {
      out << "err usage: c2 <address>";
    } else if (const auto it = merged_.c2_live_days.find(tokens[1]);
               it == merged_.c2_live_days.end()) {
      out << "err unknown c2 address " << tokens[1];
    } else {
      out << "c2 " << tokens[1] << " live_days=" << it->second.size();
      if (!it->second.empty()) out << ": " << render_days(it->second);
    }
  } else if (tokens[0] == "exploits") {
    bool first = true;
    for (const auto& [vuln, stat] : merged_.exploit_stats) {
      if (!first) out << '\n';
      first = false;
      out << vuln_label(vuln) << " count=" << stat.count;
      if (!stat.days.empty()) {
        out << " first=" << stat.days.front() << " last=" << stat.days.back();
      }
    }
    if (first) out << "(no exploits)";
  } else if (tokens[0] == "exploit") {
    if (tokens.size() != 2) {
      out << "err usage: exploit <cve-or-name>";
    } else if (const auto vuln = vuln_from_token(tokens[1]); !vuln) {
      out << "err unknown vulnerability " << tokens[1];
    } else if (const auto it = merged_.exploit_stats.find(*vuln);
               it == merged_.exploit_stats.end()) {
      out << vuln_label(*vuln) << " count=0";
    } else {
      out << vuln_label(*vuln) << " count=" << it->second.count
          << " days: " << render_days(it->second.days);
    }
  } else if (tokens[0] == "segments") {
    bool first = true;
    for (const auto& m : metas_) {
      if (!first) out << '\n';
      first = false;
      out << "seq=" << m.seq << " kind=" << to_string(m.kind) << " shard="
          << m.shard_index << '/' << m.shard_count << " bytes=" << m.bytes
          << " file=" << m.file;
    }
    if (first) out << "(empty store)";
  } else {
    out << "err unknown command " << tokens[0] << "; try: help";
  }

  // Operational latency only — wall-clock, never part of a byte-compared
  // artifact (see Store metrics contract).
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  store_.registry().counter("store.queries").inc();
  store_.registry()
      .histogram("store.query_latency_us", kLatencyBounds)
      .record(elapsed);
  return out.str();
}

void serve_loop(Store& store, std::istream& in, std::ostream& out) {
  QueryEngine engine(store);
  out << "malnet-store serving " << engine.merged().samples << " sample(s) from "
      << store.segments().size() << " segment(s); 'help' lists queries\n\n";
  out.flush();
  std::string line;
  while (std::getline(in, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    out << engine.answer(line) << "\n\n";
    out.flush();
  }
}

}  // namespace malnet::store
