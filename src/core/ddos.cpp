#include "core/ddos.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "emu/attackgen.hpp"
#include "proto/daddyl33t.hpp"
#include "proto/gafgyt.hpp"
#include "proto/mirai.hpp"
#include "util/str.hpp"

namespace malnet::core {

std::string to_string(DdosMethod m) {
  return m == DdosMethod::kProtocolProfile ? "protocol-profile"
                                           : "behavioural-heuristic";
}

namespace {

struct C2Message {
  util::SimTime time;
  util::Bytes payload;
};

/// Per-victim outbound traffic aggregate.
struct TargetTraffic {
  std::uint64_t packets = 0;
  double peak_pps = 0.0;
  util::SimTime first{INT64_MAX};
  net::Protocol proto = net::Protocol::kUdp;
  net::Port port = 0;
  util::Bytes sample_payload;
  bool tcp_syn_only = true;
  std::uint8_t icmp_type = 0, icmp_code = 0;
};

/// Infers the §5.1 attack taxonomy from observed wire behaviour.
proto::AttackType classify_traffic(const TargetTraffic& t) {
  if (t.proto == net::Protocol::kIcmp) return proto::AttackType::kBlacknurse;
  if (t.proto == net::Protocol::kTcp) {
    if (t.tcp_syn_only) return proto::AttackType::kSynFlood;
    return proto::AttackType::kStomp;
  }
  // UDP: discriminate by payload signature.
  const auto& p = t.sample_payload;
  if (util::contains(p, std::string_view("Source Engine Query"))) {
    return proto::AttackType::kVse;
  }
  if (util::contains(p, std::string_view("NFOV6"))) return proto::AttackType::kNfo;
  if (!p.empty() && p[0] == 0x16) return proto::AttackType::kTls;
  if (p.size() == 1 && p[0] == 0x00) return proto::AttackType::kUdpFlood;
  if (p.size() >= 16) return proto::AttackType::kStd;  // random-string flood
  return proto::AttackType::kUdpFlood;
}

/// §2.5 verification for the heuristic path: the burst target's address
/// must appear in the associated command, as text or as raw big-endian
/// bytes.
bool target_in_command(net::Ipv4 target, util::BytesView command) {
  if (util::contains(command, net::to_string(target))) return true;
  const util::Bytes raw{target.octet(0), target.octet(1), target.octet(2),
                        target.octet(3)};
  return util::contains(command, util::BytesView{raw});
}

void decode_profiles(const C2Message& msg, std::optional<proto::Family> hint,
                     std::vector<std::pair<util::SimTime, proto::AttackCommand>>* out) {
  const auto want = [&](proto::Family f) { return !hint || *hint == f; };

  if (want(proto::Family::kMirai)) {
    // Binary frames; one frame per message in practice, but walk anyway.
    util::BytesView view{msg.payload};
    while (view.size() >= 2) {
      const std::size_t len = (static_cast<std::size_t>(view[0]) << 8) | view[1];
      if (len == 0 || view.size() < 2 + len) break;
      if (const auto cmd = proto::mirai::decode_attack(view.subspan(0, 2 + len))) {
        out->emplace_back(msg.time, *cmd);
      }
      view = view.subspan(2 + len);
    }
  }
  const std::string text = util::to_string(msg.payload);
  for (const auto& line : util::split(text, '\n')) {
    if (line.empty()) continue;
    if (want(proto::Family::kGafgyt)) {
      if (const auto cmd = proto::gafgyt::decode_attack(line)) {
        out->emplace_back(msg.time, *cmd);
        continue;
      }
    }
    if (want(proto::Family::kDaddyl33t)) {
      if (const auto cmd = proto::daddyl33t::decode_attack(line)) {
        out->emplace_back(msg.time, *cmd);
      }
    }
  }
}

}  // namespace

std::vector<DdosDetection> detect_ddos(const emu::SandboxReport& report,
                                       net::Endpoint c2,
                                       std::optional<proto::Family> family_hint,
                                       const DdosDetectOptions& opts) {
  // --- pass 1: split the capture into C2 messages and outbound traffic ----
  std::vector<C2Message> c2_messages;
  std::map<net::Ipv4, TargetTraffic> targets;
  std::map<net::Ipv4, std::map<std::int64_t, std::uint64_t>> per_second;

  for (const auto& p : report.capture) {
    const bool from_c2 = p.src == c2.ip && p.src_port == c2.port;
    if (from_c2 && !p.payload.empty()) {
      c2_messages.push_back({p.time, p.payload});
      continue;
    }
    // Outbound, non-C2-bound traffic (floods are dropped at the perimeter
    // but the tap recorded the attempt).
    if (p.dst == c2.ip || p.src == c2.ip) continue;
    if (p.proto == net::Protocol::kUdp && p.dst_port == 53) continue;  // DNS
    auto& t = targets[p.dst];
    ++t.packets;
    t.first = std::min(t.first, p.time);
    t.proto = p.proto;
    t.port = p.dst_port;
    if (p.proto == net::Protocol::kTcp && !p.payload.empty()) t.tcp_syn_only = false;
    if (p.proto == net::Protocol::kIcmp) {
      t.icmp_type = p.icmp.type;
      t.icmp_code = p.icmp.code;
    }
    if (t.sample_payload.empty() && !p.payload.empty()) t.sample_payload = p.payload;
    ++per_second[p.dst][p.time.us / 1'000'000];
  }
  for (auto& [ip, seconds] : per_second) {
    for (const auto& [sec, count] : seconds) {
      targets[ip].peak_pps =
          std::max(targets[ip].peak_pps, static_cast<double>(count));
    }
  }

  // --- method (a): protocol profiles ---------------------------------------
  std::vector<std::pair<util::SimTime, proto::AttackCommand>> decoded;
  for (const auto& msg : c2_messages) decode_profiles(msg, family_hint, &decoded);

  std::vector<DdosDetection> out;
  std::set<net::Ipv4> explained;
  for (const auto& [time, cmd] : decoded) {
    DdosDetection det;
    det.method = DdosMethod::kProtocolProfile;
    det.command = cmd;
    const auto it = targets.find(cmd.target.ip);
    if (it != targets.end() &&
        it->second.packets >= static_cast<std::uint64_t>(opts.min_attack_packets)) {
      det.verified = true;  // the bot demonstrably flooded the target
      det.observed_pps = it->second.peak_pps;
      explained.insert(cmd.target.ip);
    }
    out.push_back(std::move(det));
  }

  // --- method (b): behavioural heuristic for unprofiled variants -----------
  for (const auto& [ip, traffic] : targets) {
    if (explained.count(ip) > 0) continue;
    if (traffic.peak_pps < opts.pps_threshold) continue;

    // Associate with the last C2 message before the burst began.
    const C2Message* last = nullptr;
    for (const auto& msg : c2_messages) {
      if (msg.time <= traffic.first) last = &msg;
    }
    if (last == nullptr) continue;

    DdosDetection det;
    det.method = DdosMethod::kBehaviouralHeuristic;
    det.command.raw = last->payload;
    det.command.type = classify_traffic(traffic);
    det.command.target = {ip, traffic.port};
    det.command.family = family_hint.value_or(proto::Family::kMirai);
    det.observed_pps = traffic.peak_pps;
    det.verified = target_in_command(ip, last->payload);
    out.push_back(std::move(det));
  }
  return out;
}

}  // namespace malnet::core
