// The MalNet pipeline (§2): the daily collect-and-analyse loop that builds
// every dataset of Table 1 —
//
//   D-Samples  : the binaries, with feed metadata and family labels
//   D-C2s      : C2 addresses found by the sandbox, liveness-probed and
//                cross-validated against the TI feeds
//   D-PC2      : the two-week active probing study (6 subnets x 12 ports)
//   D-Exploits : handshaker-harvested exploits attributed to Table 4
//   D-DDOS     : commands eavesdropped during restricted live runs
//
// Pipeline::run() executes the whole year of simulated study and returns
// the datasets; the report module turns them into the paper's tables and
// figures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "botnet/probe_world.hpp"
#include "botnet/world.hpp"
#include "core/c2detect.hpp"
#include "core/ddos.hpp"
#include "core/exploit_id.hpp"
#include "core/prober.hpp"
#include "emu/sandbox.hpp"
#include "fault/fault.hpp"
#include "intel/threat_intel.hpp"
#include "obs/obs.hpp"

namespace malnet::core {

struct SampleRecord {
  std::string sha256;
  std::int64_t day = 0;
  botnet::FeedSource source = botnet::FeedSource::kVirusTotal;
  int vt_detections = 0;
  proto::Family label = proto::Family::kMirai;  // YARA + AVClass pipeline label
  bool p2p = false;       // filtered out of the C2 study (§2.3a)
  bool activated = false;
  bool evasion_abort = false;
  std::vector<std::string> c2_addresses;  // what detect_c2 found
};

struct C2Record {
  std::string address;
  bool is_dns = false;
  net::Ipv4 ip;  // resolved address (for AS attribution)
  net::Port port = 0;
  std::uint32_t asn = 0;
  std::string as_country;
  std::int64_t discovery_day = -1;
  std::vector<std::int64_t> referred_days;  // analysis days referring to it
  std::vector<std::int64_t> live_days;      // days the liveness probe engaged
  int distinct_samples = 0;
  bool vt_malicious_same_day = false;
  int vt_vendors_same_day = 0;
  bool vt_malicious_requery = false;  // filled at study end (May 7 re-query)
  bool is_downloader = false;         // also seen serving loaders

  [[nodiscard]] bool ever_live() const { return !live_days.empty(); }
  /// Observed lifespan (§3.2): last minus first live observation, in days,
  /// counting a single live day as 1. Zero if never observed live.
  [[nodiscard]] std::int64_t observed_lifespan_days() const {
    if (live_days.empty()) return 0;
    return live_days.back() - live_days.front() + 1;
  }
};

struct ExploitRecord {
  std::string sample_sha;
  std::int64_t day = 0;
  vulndb::VulnId vuln{};
  std::string downloader_host;
  std::string loader_name;
};

struct DdosRecord {
  std::string sample_sha;
  std::int64_t day = 0;
  std::string c2_address;
  net::Endpoint c2;
  std::uint32_t c2_asn = 0;
  std::string c2_country;
  DdosDetection detection;
};

/// One sample whose observation the pipeline finished in a degraded state
/// instead of crashing the study (DESIGN.md §11 error containment).
struct DegradedSample {
  std::string sha256;
  std::int64_t day = 0;
  /// "exception:<what>" (analysis chain threw) or "dns:<address>" (a C2
  /// name never resolved under chaos, so its liveness went unchecked).
  std::string reason;
};

struct PipelineConfig {
  std::uint64_t seed = 22;
  botnet::WorldConfig world{};
  /// Family profile registry shared by the world planner and every sandbox
  /// run. Null means the builtin registry, which is bit-identical to the
  /// pre-profile compiled-in behaviour. Held as a shared_ptr so parallel
  /// shards reuse one loaded registry; overrides world.profiles /
  /// SandboxConfig::profiles when set.
  std::shared_ptr<const profile::Registry> profiles;
  /// Fault-injection profile (DESIGN.md §11). kNone runs the classic clean
  /// study, bit-identical to a build without the fault layer.
  faultsim::Profile chaos = faultsim::Profile::kNone;
  /// Varies the fault schedule independently of the world seed.
  std::uint64_t chaos_seed = 0;
  /// Per-packet drop probability of the simulated internet, in [0, 1).
  /// Zero keeps flows lossless (the default study setting); raising it
  /// degrades every observation channel at once.
  double loss = 0.0;
  sim::Duration observe_duration = sim::Duration::minutes(8);
  sim::Duration live_duration = sim::Duration::hours(2);
  sim::Duration probe_duration = sim::Duration::seconds(90);
  int handshaker_threshold = 20;   // §2.4
  double pps_threshold = 100.0;    // §2.5b
  int max_candidates_per_sample = 2;
  /// The 2 h restricted watch is expensive; at most this many live runs are
  /// spent per C2 address over the study.
  int max_live_runs_per_c2 = 1;
  /// 2022-05-07, the paper's re-query date, as a study day.
  std::int64_t requery_day = 404;
  bool run_probe_campaign = true;  // the D-PC2 study (adds ~3M sim events)
  int probe_rounds = 84;
  /// Buffer sim-time trace events (obs::Tracer) for StudyResults::trace.
  bool trace = false;
  /// Attribute per-event wall-clock to phases (two extra clock reads per
  /// sim event — metrics and per-phase event counts are always on).
  bool profile_wall = false;
};

struct StudyResults {
  std::vector<SampleRecord> d_samples;
  std::map<std::string, C2Record> d_c2s;
  std::vector<ExploitRecord> d_exploits;
  std::vector<DdosRecord> d_ddos;
  ProbeCampaignResult d_pc2;
  std::set<std::string> downloader_hosts;  // distinct downloader addresses
  /// Samples whose observation was impaired but contained (study-order;
  /// empty on clean runs). Serialized as dataset format v2 when non-empty.
  std::vector<DegradedSample> degraded;

  // Ground truth snapshots for validation (not used by any table/figure
  // computation — only for paper-vs-truth sanity checks in tests/benches).
  std::size_t truth_commands_issued = 0;
  std::size_t truth_planned_c2s = 0;

  std::uint64_t sandbox_runs = 0;
  std::uint64_t sim_events = 0;
  /// Feed binaries discarded at the architecture gate (§2.2: the study
  /// keeps MIPS-32 only).
  std::uint64_t non_mips_skipped = 0;

  // --- Observability (DESIGN.md §10) -------------------------------------
  /// Merged registry snapshot. Sim-derived integers only, so its JSON is a
  /// pure function of (config, shards) — byte-identical for any --jobs.
  obs::MetricsSnapshot metrics;
  /// Pre-merge per-shard snapshots (shard order; single-pipeline runs leave
  /// this empty). Lets callers localise a counter anomaly to a shard.
  std::vector<obs::MetricsSnapshot> shard_metrics;
  /// Per-phase rollup. sim_events/ops columns are deterministic; wall_ns
  /// is wall-clock and is not.
  obs::ProfileSnapshot profile;
  /// Buffered trace events (empty unless PipelineConfig::trace). pid is
  /// the shard index after a ParallelStudy merge.
  std::vector<obs::TraceEvent> trace;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig cfg = {});
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Runs the full study (one year of collection + the probing campaign)
  /// and returns every dataset. Call once.
  [[nodiscard]] StudyResults run();

  /// Access to the constructed world (e.g. for validation in tests).
  [[nodiscard]] const botnet::World& world() const { return *world_; }
  [[nodiscard]] const intel::ThreatIntel& ti() const { return *intel_; }
  [[nodiscard]] const asdb::AsDatabase& asdb() const { return world_->asdb(); }
  /// The pipeline's observability sink (registry + tracer). Live while the
  /// pipeline is; run() snapshots it into StudyResults.
  [[nodiscard]] obs::Observer& observer() { return obs_; }

 private:
  void analyse_sample(const botnet::PlannedSample& sample);
  void handle_observe_report(const botnet::PlannedSample& sample,
                             const emu::SandboxReport& report);
  void probe_candidate(const botnet::PlannedSample& sample,
                       std::vector<C2Candidate> candidates, std::size_t idx,
                       bool live_found);
  void record_c2_observation(const botnet::PlannedSample& sample,
                             const C2Candidate& cand, net::Ipv4 real_ip, bool live);
  void start_live_run(const botnet::PlannedSample& sample, const C2Candidate& cand,
                      net::Ipv4 real_ip);
  void run_probe_campaign();
  void finalize_results();
  /// Records a contained per-sample failure in StudyResults::degraded.
  void note_degraded(const botnet::PlannedSample& sample, std::string reason);
  /// Copies end-of-run totals (network, scheduler, campaign, C2 lifespans)
  /// into the registry and fills the per-phase profile.
  void harvest_observability();

  PipelineConfig cfg_;
  obs::Observer obs_;
  obs::ProfileSnapshot profile_;
  // Cached registry instruments (see obs/metrics.hpp on why).
  obs::Counter* m_samples_ = nullptr;
  obs::Counter* m_non_mips_ = nullptr;
  obs::Counter* m_liveness_probes_ = nullptr;
  obs::Counter* m_live_runs_ = nullptr;
  obs::Counter* m_c2_observations_ = nullptr;
  obs::Counter* m_ddos_records_ = nullptr;
  obs::Histogram* m_c2_candidates_ = nullptr;
  std::unique_ptr<sim::EventScheduler> sched_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<botnet::World> world_;
  std::unique_ptr<faultsim::FaultInjector> injector_;  // null when chaos off
  std::unique_ptr<emu::Sandbox> sandbox_;
  std::unique_ptr<intel::ThreatIntel> intel_;
  std::unique_ptr<sim::Host> analysis_host_;  // DNS lookups for probing
  std::unique_ptr<botnet::ProbeWorld> probe_world_;
  std::unique_ptr<ProbeCampaign> campaign_;

  StudyResults results_;
  std::map<std::string, proto::Family> label_by_sample_;
  std::map<std::string, int> live_runs_per_c2_;
  std::uint64_t resolver_retries_ = 0;
  bool ran_ = false;
};

}  // namespace malnet::core
