// P2P overlay crawler — the extension the paper leaves on the table when it
// filters Mozi/Hajime out of the C2 study (§2.3a): starting from the
// bootstrap peers a sandbox capture reveals, breadth-first walk the DHT
// with get_peers queries and enumerate the botnet's membership.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "sim/network.hpp"

namespace malnet::core {

struct CrawlConfig {
  sim::Duration query_timeout = sim::Duration::seconds(3);
  int retries_per_peer = 2;      // churny nodes need a second knock
  int max_outstanding = 16;      // parallel query budget
  std::size_t max_peers = 5000;  // discovery cap (safety)
};

struct CrawlResult {
  std::set<net::Endpoint> discovered;   // every address seen in the overlay
  std::set<net::Endpoint> responsive;   // answered at least one query
  std::uint64_t queries_sent = 0;
  int rounds = 0;  // BFS depth reached
};

/// Crawls the overlay from `bootstrap` using `crawler` as the vantage
/// host. `done` fires once when the frontier is exhausted (or max_peers is
/// hit). The crawler object must stay alive until then.
class P2pCrawler {
 public:
  P2pCrawler(sim::Host& crawler, std::vector<net::Endpoint> bootstrap,
             CrawlConfig cfg, std::function<void(CrawlResult)> done);
  P2pCrawler(const P2pCrawler&) = delete;
  P2pCrawler& operator=(const P2pCrawler&) = delete;
  ~P2pCrawler();

  void start();

 private:
  void pump();
  void query(net::Endpoint peer, int attempts_left);
  void on_reply(net::Endpoint peer, const std::vector<net::Endpoint>& peers);
  void finish_peer(net::Endpoint peer);
  void maybe_done();

  sim::Host& host_;
  CrawlConfig cfg_;
  std::function<void(CrawlResult)> done_;
  std::vector<net::Endpoint> frontier_;
  std::set<net::Endpoint> queried_;
  std::map<net::Port, net::Endpoint> in_flight_;  // local port -> peer
  CrawlResult result_;
  std::string my_id_;
  bool finished_ = false;
};

}  // namespace malnet::core
