#include "core/p2p_crawl.hpp"

#include "proto/p2p.hpp"
#include "util/rng.hpp"

namespace malnet::core {

P2pCrawler::P2pCrawler(sim::Host& crawler, std::vector<net::Endpoint> bootstrap,
                       CrawlConfig cfg, std::function<void(CrawlResult)> done)
    : host_(crawler), cfg_(cfg), done_(std::move(done)), frontier_(std::move(bootstrap)) {
  if (!done_) throw std::invalid_argument("P2pCrawler: null callback");
  util::Rng rng(host_.network().rng()());
  for (int i = 0; i < 20; ++i) {
    my_id_.push_back(static_cast<char>(rng.uniform(33, 126)));
  }
  for (const auto& ep : frontier_) result_.discovered.insert(ep);
}

P2pCrawler::~P2pCrawler() = default;

void P2pCrawler::start() { pump(); }

void P2pCrawler::pump() {
  while (!frontier_.empty() &&
         in_flight_.size() < static_cast<std::size_t>(cfg_.max_outstanding) &&
         result_.discovered.size() < cfg_.max_peers) {
    const net::Endpoint peer = frontier_.back();
    frontier_.pop_back();
    if (!queried_.insert(peer).second) continue;
    ++result_.rounds;
    query(peer, cfg_.retries_per_peer);
  }
  maybe_done();
}

void P2pCrawler::query(net::Endpoint peer, int attempts_left) {
  const net::Port local = host_.alloc_ephemeral_port();
  in_flight_[local] = peer;
  ++result_.queries_sent;

  const std::string txn{static_cast<char>(local >> 8), static_cast<char>(local)};
  host_.udp_bind(local, [this, peer, local](const net::Packet& p) {
    const auto reply = proto::p2p::decode_peers_reply(p.payload);
    if (!reply) return;
    host_.udp_unbind(local);
    if (in_flight_.erase(local) == 0) return;  // late duplicate
    result_.responsive.insert(peer);
    on_reply(peer, reply->peers);
  });
  host_.schedule_safe(cfg_.query_timeout, [this, peer, local, attempts_left]() {
    const auto it = in_flight_.find(local);
    if (it == in_flight_.end()) return;  // answered
    host_.udp_unbind(local);
    in_flight_.erase(it);
    if (attempts_left > 1) {
      query(peer, attempts_left - 1);
    } else {
      finish_peer(peer);
    }
  });
  host_.udp_send(peer, proto::p2p::encode_get_peers({my_id_, txn}), local);
}

void P2pCrawler::on_reply(net::Endpoint peer, const std::vector<net::Endpoint>& peers) {
  (void)peer;
  for (const auto& ep : peers) {
    if (result_.discovered.size() >= cfg_.max_peers) break;  // hard cap
    if (result_.discovered.insert(ep).second && queried_.count(ep) == 0) {
      frontier_.push_back(ep);
    }
  }
  pump();
}

void P2pCrawler::finish_peer(net::Endpoint) { pump(); }

void P2pCrawler::maybe_done() {
  if (finished_) return;
  if (!in_flight_.empty()) return;
  const bool capped = result_.discovered.size() >= cfg_.max_peers;
  if (!frontier_.empty() && !capped) return;
  finished_ = true;
  done_(std::move(result_));
}

}  // namespace malnet::core
