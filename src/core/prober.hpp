// Active probing (§2.1 mode 2 + §2.3b).
//
//  * probe_liveness — one weaponized sandbox run whose C2 flow is MITM-
//    redirected at a target endpoint; reports whether the target engaged
//    with the malware's protocol. The pipeline uses this to liveness-check
//    every referred C2 on its discovery day.
//
//  * ProbeCampaign — the two-week D-PC2 study: every 4 hours, sweep 6
//    subnets x 12 ports for listeners (respecting §2.6: no second packet
//    to hosts that do not listen; banner-identified benign services are
//    skipped), then engage remaining candidates with the weaponized
//    binaries and record which respond.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "emu/sandbox.hpp"
#include "inetsim/services.hpp"
#include "sim/network.hpp"

namespace malnet::core {

/// Result of one weaponized engagement attempt.
struct LivenessResult {
  bool engaged = false;
  util::Bytes first_data;  // what the target said first (protocol evidence)
};

/// One weapon: a binary plus the C2 flow inside it to hijack.
struct Weapon {
  util::Bytes binary;
  net::Endpoint c2_hint;
};

/// Re-probe policy for liveness checks. The default (one attempt) is the
/// classic behaviour; chaos studies raise `attempts` so a probe that died
/// to injected loss gets another shot before the C2 is declared dead.
struct ProbePolicy {
  int attempts = 1;
  sim::Duration retry_delay = sim::Duration::seconds(30);
};

/// Fires a weaponized run at `target`. `done` is invoked once.
void probe_liveness(emu::Sandbox& sandbox, const Weapon& weapon, net::Endpoint target,
                    std::function<void(LivenessResult)> done,
                    sim::Duration duration = sim::Duration::seconds(90),
                    ProbePolicy policy = {});

struct ProbeCampaignConfig {
  std::vector<net::Subnet> subnets;
  std::vector<net::Port> ports;
  sim::Duration interval = sim::Duration::hours(4);
  int rounds = 84;  // 6 probes/day for two weeks
  double scout_rate_pps = 120.0;
  sim::Duration banner_wait = sim::Duration::millis(1500);
  /// Observability sink (owned by the enclosing pipeline; may be null):
  /// counts rounds and emits one trace span per campaign round.
  obs::Observer* obs = nullptr;
};

struct ProbeCampaignResult {
  int rounds = 0;
  /// Response raster (Figure 4): for each ever-responsive target, one bool
  /// per probe round.
  std::map<net::Endpoint, std::vector<bool>> raster;
  std::uint64_t scout_probes = 0;
  std::uint64_t weapon_runs = 0;
  std::uint64_t banner_filtered = 0;
};

/// Runs the campaign; `done` fires after the final round. The campaign
/// object must stay alive until then.
class ProbeCampaign {
 public:
  ProbeCampaign(sim::Network& net, emu::Sandbox& sandbox, ProbeCampaignConfig cfg,
                std::vector<Weapon> weapons,
                std::function<void(ProbeCampaignResult)> done);
  ~ProbeCampaign();
  ProbeCampaign(const ProbeCampaign&) = delete;
  ProbeCampaign& operator=(const ProbeCampaign&) = delete;

  void start();

 private:
  struct Round;

  void run_round(int round);
  void scout_next(std::shared_ptr<Round> state);
  void engage_candidates(std::shared_ptr<Round> state);
  void finish_round(std::shared_ptr<Round> state);

  sim::Network& net_;
  emu::Sandbox& sandbox_;
  ProbeCampaignConfig cfg_;
  std::vector<Weapon> weapons_;
  std::function<void(ProbeCampaignResult)> done_;
  std::unique_ptr<sim::Host> scout_;
  ProbeCampaignResult result_;
  std::map<net::Endpoint, std::vector<bool>> full_raster_;  // all candidates
};

}  // namespace malnet::core
