// Seed-sharded parallel execution of the MalNet study.
//
// The paper's per-sample analyses are independent, which makes the year of
// study embarrassingly parallel: ParallelStudy splits a PipelineConfig into
// N shards — each a fully independent Pipeline with its own EventScheduler,
// Network and World, planning an interleaved slice of the same study-wide
// population under a SplitMix64-derived seed — runs the shards on a
// util::ThreadPool, and deterministically merges the per-shard datasets.
//
// Determinism contract: the merged StudyResults are a pure function of
// (base config, shards). The worker count (`jobs`) only changes wall-clock
// time, never a byte of output, because shards share no mutable state and
// the merge always walks them in shard order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/pipeline.hpp"

namespace malnet::core {

struct ParallelStudyConfig {
  PipelineConfig base;
  /// Number of independent shards the study population is split into.
  /// Changes the (deterministic) output: shard boundaries reseed the world.
  int shards = 1;
  /// Worker threads; 0 means util::ThreadPool::default_worker_count().
  /// Never affects results — only wall-clock time.
  int jobs = 0;

  /// Resume seam (malnet::store): consulted once per shard, on the worker
  /// thread, before the shard's pipeline is built. Returning a value skips
  /// execution and uses it verbatim in the merge — the caller guarantees it
  /// equals what the shard would have computed (the store verifies a
  /// content hash before handing results back). May be called concurrently.
  std::function<std::optional<StudyResults>(int shard)> shard_preload;
  /// Completion seam: invoked on the worker thread right after a freshly
  /// executed shard finishes (never for preloaded shards). Must be
  /// thread-safe; a throw fails the whole study, and shards already
  /// committed by the hook stay durable — exactly the crash model
  /// `--resume` recovers from.
  std::function<void(int shard, const StudyResults& results)> on_shard_complete;
};

/// Seed for shard `index` of `shards`. A single-shard study keeps the base
/// seed (so ParallelStudy at shards=1 reproduces Pipeline::run() exactly);
/// otherwise each shard takes the next value of the SplitMix64 stream
/// seeded at `base_seed`, giving decorrelated sibling worlds.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t base_seed, int shards,
                                       int index);

/// The fully-derived config for one shard: derived seed, this shard's
/// interleaved slice of the world population, and the probe campaign on
/// shard 0 only (D-PC2 is a fixed-size side study, not per-sample work).
/// At shards=1 the base config is returned verbatim.
[[nodiscard]] PipelineConfig shard_config(const PipelineConfig& base,
                                          int shards, int index);

/// Deterministic merge, independent of how the shards were scheduled:
/// d_samples / d_exploits / d_ddos concatenate in shard order; d_c2s merges
/// key-wise (the earlier-discovered record keeps the identity fields, day
/// lists union sorted, per-address counters add); downloader_hosts unions;
/// scalar counters sum; d_pc2 is shard 0's. Observability: `metrics`
/// merges key-wise in shard order (and each shard's pre-merge snapshot is
/// kept in `shard_metrics`), `profile` adds per-phase, trace events are
/// concatenated with pid = shard index.
[[nodiscard]] StudyResults merge_study_results(std::vector<StudyResults> parts);

class ParallelStudy {
 public:
  explicit ParallelStudy(ParallelStudyConfig cfg);

  /// Runs every shard (at most `jobs` concurrently) and returns the merged
  /// datasets. Call once.
  [[nodiscard]] StudyResults run();

 private:
  ParallelStudyConfig cfg_;
  bool ran_ = false;
};

}  // namespace malnet::core
