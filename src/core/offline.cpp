#include "core/offline.hpp"

#include "dns/message.hpp"
#include "net/pcap.hpp"

namespace malnet::core {

emu::SandboxReport report_from_packets(std::vector<net::Packet> packets) {
  emu::SandboxReport report;
  report.parsed = true;
  report.activated = !packets.empty();
  for (const auto& p : packets) {
    // Reconstruct the DNS-query log the live tap would have kept.
    if (p.proto == net::Protocol::kUdp && p.dst_port == 53) {
      if (const auto q = dns::decode(p.payload); q && !q->questions.empty()) {
        report.dns_queries.push_back(q->questions.front().name);
      }
    }
  }
  report.capture = std::move(packets);
  return report;
}

emu::SandboxReport report_from_pcap(const std::string& path) {
  return report_from_packets(net::load_pcap(path));
}

}  // namespace malnet::core
