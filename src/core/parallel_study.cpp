#include "core/parallel_study.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "net/ipv4.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace malnet::core {

namespace {

/// Sorted union of two ascending day lists.
std::vector<std::int64_t> union_days(const std::vector<std::int64_t>& a,
                                     const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Folds `src` into `dst` for the same C2 address observed by two shards
/// (rare — sibling worlds draw from the same AS address pools, so dotted
/// quads can collide). The earlier discovery keeps the identity fields.
void merge_c2(C2Record& dst, const C2Record& src) {
  if (src.discovery_day < dst.discovery_day) {
    dst.is_dns = src.is_dns;
    dst.ip = src.ip;
    dst.port = src.port;
    dst.asn = src.asn;
    dst.as_country = src.as_country;
    dst.discovery_day = src.discovery_day;
  }
  dst.referred_days = union_days(dst.referred_days, src.referred_days);
  dst.live_days = union_days(dst.live_days, src.live_days);
  dst.distinct_samples += src.distinct_samples;
  dst.vt_vendors_same_day = std::max(dst.vt_vendors_same_day, src.vt_vendors_same_day);
  dst.vt_malicious_same_day = dst.vt_vendors_same_day > 0;
  dst.vt_malicious_requery = dst.vt_malicious_requery || src.vt_malicious_requery;
  dst.is_downloader = dst.is_downloader || src.is_downloader;
}

template <typename T>
void append(std::vector<T>& dst, std::vector<T>&& src) {
  dst.insert(dst.end(), std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.end()));
}

}  // namespace

std::uint64_t shard_seed(std::uint64_t base_seed, int shards, int index) {
  if (shards < 1 || index < 0 || index >= shards) {
    throw std::invalid_argument("shard_seed: bad shards/index");
  }
  if (shards == 1) return base_seed;
  std::uint64_t state = base_seed;
  std::uint64_t derived = 0;
  for (int i = 0; i <= index; ++i) derived = util::splitmix64(state);
  return derived;
}

PipelineConfig shard_config(const PipelineConfig& base, int shards, int index) {
  if (shards < 1 || index < 0 || index >= shards) {
    throw std::invalid_argument("shard_config: bad shards/index");
  }
  PipelineConfig cfg = base;
  cfg.seed = shard_seed(base.seed, shards, index);
  cfg.world.shard_count = shards;
  cfg.world.shard_index = index;
  if (index != 0) cfg.run_probe_campaign = false;
  return cfg;
}

StudyResults merge_study_results(std::vector<StudyResults> parts) {
  if (parts.empty()) throw std::invalid_argument("merge_study_results: no shards");
  StudyResults merged = std::move(parts.front());
  if (parts.size() > 1) {
    // Keep shard 0's pre-merge snapshot alongside the others; `metrics`
    // itself becomes the study-wide aggregate below. Shard order — never
    // completion order — keeps the merge jobs-invariant.
    merged.shard_metrics.clear();
    merged.shard_metrics.push_back(merged.metrics);
    for (auto& e : merged.trace) e.pid = 0;
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    StudyResults& p = parts[i];
    merged.shard_metrics.push_back(p.metrics);
    merged.metrics.merge(p.metrics);
    merged.profile.merge(p.profile);
    for (auto& e : p.trace) e.pid = static_cast<int>(i);
    append(merged.trace, std::move(p.trace));
    append(merged.d_samples, std::move(p.d_samples));
    append(merged.d_exploits, std::move(p.d_exploits));
    append(merged.d_ddos, std::move(p.d_ddos));
    append(merged.degraded, std::move(p.degraded));
    for (auto& [addr, rec] : p.d_c2s) {
      auto [it, inserted] = merged.d_c2s.try_emplace(addr, std::move(rec));
      if (!inserted) merge_c2(it->second, rec);
    }
    merged.downloader_hosts.insert(p.downloader_hosts.begin(),
                                   p.downloader_hosts.end());
    // d_pc2 stays shard 0's: only that shard runs the probe campaign.
    merged.truth_commands_issued += p.truth_commands_issued;
    merged.truth_planned_c2s += p.truth_planned_c2s;
    merged.sandbox_runs += p.sandbox_runs;
    merged.sim_events += p.sim_events;
    merged.non_mips_skipped += p.non_mips_skipped;
  }
  // A downloader observed by one shard may collide with a C2 address
  // discovered by another; refresh the cross-shard co-hosting flag.
  for (auto& [addr, rec] : merged.d_c2s) {
    rec.is_downloader = rec.is_downloader ||
                        merged.downloader_hosts.count(net::to_string(rec.ip)) > 0 ||
                        merged.downloader_hosts.count(addr) > 0;
  }
  return merged;
}

ParallelStudy::ParallelStudy(ParallelStudyConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.shards < 1) throw std::invalid_argument("ParallelStudy: shards must be >= 1");
  if (cfg_.jobs < 0) throw std::invalid_argument("ParallelStudy: jobs must be >= 0");
}

StudyResults ParallelStudy::run() {
  if (ran_) throw std::logic_error("ParallelStudy::run: already ran");
  ran_ = true;

  const auto shards = static_cast<std::size_t>(cfg_.shards);
  std::size_t jobs = cfg_.jobs > 0 ? static_cast<std::size_t>(cfg_.jobs)
                                   : util::ThreadPool::default_worker_count();
  jobs = std::min(jobs, shards);

  util::log_line(util::LogLevel::kInfo, "parallel",
                 "running " + std::to_string(shards) + " shard(s) on " +
                     std::to_string(jobs) + " worker(s)");

  // Results land in per-shard slots, so scheduling order is irrelevant to
  // the merge below.
  std::vector<StudyResults> parts(shards);
  util::ThreadPool pool(jobs);
  util::parallel_for(pool, shards, [this, &parts](std::size_t i) {
    try {
      if (cfg_.shard_preload) {
        if (auto preloaded = cfg_.shard_preload(static_cast<int>(i))) {
          parts[i] = std::move(*preloaded);
          return;
        }
      }
      Pipeline pipeline(shard_config(cfg_.base, cfg_.shards, static_cast<int>(i)));
      parts[i] = pipeline.run();
      if (cfg_.on_shard_complete) {
        cfg_.on_shard_complete(static_cast<int>(i), parts[i]);
      }
    } catch (const std::exception& e) {
      // Per-sample failures are contained inside the pipeline; anything that
      // still escapes is a shard-level bug — rethrow with shard context.
      throw std::runtime_error("shard " + std::to_string(i) + ": " + e.what());
    }
  });
  return merge_study_results(std::move(parts));
}

}  // namespace malnet::core
