#include "core/prober.hpp"

#include <set>

#include "util/log.hpp"

namespace malnet::core {

void probe_liveness(emu::Sandbox& sandbox, const Weapon& weapon, net::Endpoint target,
                    std::function<void(LivenessResult)> done, sim::Duration duration,
                    ProbePolicy policy) {
  if (!done) throw std::invalid_argument("probe_liveness: null callback");
  emu::SandboxOptions opts;
  opts.mode = emu::SandboxMode::kWeaponized;
  opts.duration = duration;
  opts.c2_hint = weapon.c2_hint;
  opts.mitm_target = target;
  const int attempts_left = std::max(1, policy.attempts) - 1;
  sandbox.start(weapon.binary, opts,
                [&sandbox, weapon, target, duration, policy, attempts_left,
                 done = std::move(done)](const emu::SandboxReport& report) mutable {
                  LivenessResult res;
                  res.first_data = report.mitm_first_data;
                  // A well-known service banner means we reached something
                  // benign, not a C2 (§2.6 filtering).
                  res.engaged =
                      report.mitm_engaged &&
                      !inetsim::is_well_known_banner(util::to_string(res.first_data));
                  if (res.engaged || attempts_left <= 0) {
                    done(res);
                    return;
                  }
                  // Re-probe: a dead first attempt may just be injected loss.
                  ProbePolicy next = policy;
                  next.attempts = attempts_left;
                  sandbox.network().scheduler().after(
                      policy.retry_delay,
                      [&sandbox, weapon, target, duration, next,
                       done = std::move(done)]() mutable {
                        probe_liveness(sandbox, weapon, target, std::move(done),
                                       duration, next);
                      });
                });
}

// ---------------------------------------------------------------------------

struct ProbeCampaign::Round {
  int round = 0;
  std::int64_t start_sim_us = 0;
  std::vector<net::Endpoint> queue;
  std::size_t next = 0;
  int outstanding = 0;
  bool scouting_done = false;
  std::vector<net::Endpoint> candidates;
  std::size_t next_candidate = 0;
  std::size_t weapon_idx = 0;
  std::set<net::Endpoint> responsive;
};

ProbeCampaign::ProbeCampaign(sim::Network& net, emu::Sandbox& sandbox,
                             ProbeCampaignConfig cfg, std::vector<Weapon> weapons,
                             std::function<void(ProbeCampaignResult)> done)
    : net_(net),
      sandbox_(sandbox),
      cfg_(std::move(cfg)),
      weapons_(std::move(weapons)),
      done_(std::move(done)) {
  if (cfg_.subnets.empty() || cfg_.ports.empty() || weapons_.empty() || !done_) {
    throw std::invalid_argument("ProbeCampaign: incomplete configuration");
  }
  scout_ = std::make_unique<sim::Host>(net_, net::Ipv4{192, 0, 2, 9}, "prober-scout");
}

ProbeCampaign::~ProbeCampaign() = default;

void ProbeCampaign::start() { run_round(0); }

void ProbeCampaign::run_round(int round) {
  if (round >= cfg_.rounds) {
    result_.rounds = cfg_.rounds;
    for (auto& [ep, bits] : full_raster_) {
      bool any = false;
      for (const bool b : bits) any |= b;
      if (any) result_.raster.emplace(ep, bits);
    }
    done_(std::move(result_));
    return;
  }
  auto state = std::make_shared<Round>();
  state->round = round;
  state->start_sim_us = net_.now().us;
  for (const auto& subnet : cfg_.subnets) {
    for (std::uint32_t h = 1; h + 1 < subnet.size(); ++h) {
      for (const auto port : cfg_.ports) {
        state->queue.push_back({subnet.host(h), port});
      }
    }
  }
  scout_next(state);
}

void ProbeCampaign::scout_next(std::shared_ptr<Round> state) {
  // Issue one 100 ms batch of scout connects.
  const auto batch = static_cast<std::size_t>(cfg_.scout_rate_pps / 10.0) + 1;
  for (std::size_t i = 0; i < batch && state->next < state->queue.size(); ++i) {
    const net::Endpoint target = state->queue[state->next++];
    ++result_.scout_probes;
    ++state->outstanding;
    scout_->tcp_connect(
        target,
        [this, state, target](sim::ConnectOutcome outcome, sim::TcpConn* conn) {
          if (outcome != sim::ConnectOutcome::kConnected || conn == nullptr) {
            --state->outstanding;
            if (state->scouting_done && state->outstanding == 0) {
              engage_candidates(state);
            }
            return;
          }
          // Listener found: wait briefly for a service banner.
          auto banner = std::make_shared<std::string>();
          conn->on_data([banner](sim::TcpConn&, util::BytesView data) {
            banner->append(reinterpret_cast<const char*>(data.data()), data.size());
          });
          sim::TcpConn* conn_ptr = conn;
          scout_->schedule_safe(cfg_.banner_wait, [this, state, target, banner,
                                                   conn_ptr]() {
            if (conn_ptr->established()) conn_ptr->close();
            if (!banner->empty() && inetsim::is_well_known_banner(*banner)) {
              ++result_.banner_filtered;
            } else {
              state->candidates.push_back(target);
            }
            --state->outstanding;
            if (state->scouting_done && state->outstanding == 0) {
              engage_candidates(state);
            }
          });
        },
        sim::Duration::seconds(2));
  }
  if (state->next < state->queue.size()) {
    scout_->schedule_safe(sim::Duration::millis(100),
                          [this, state]() { scout_next(state); });
  } else {
    state->scouting_done = true;
    if (state->outstanding == 0) engage_candidates(state);
  }
}

void ProbeCampaign::engage_candidates(std::shared_ptr<Round> state) {
  if (state->next_candidate >= state->candidates.size()) {
    finish_round(state);
    return;
  }
  const net::Endpoint target = state->candidates[state->next_candidate];
  if (state->weapon_idx >= weapons_.size()) {
    // No weapon engaged this target; move on.
    state->weapon_idx = 0;
    ++state->next_candidate;
    engage_candidates(state);
    return;
  }
  const Weapon& weapon = weapons_[state->weapon_idx];
  ++result_.weapon_runs;
  probe_liveness(sandbox_, weapon, target, [this, state, target](LivenessResult res) {
    if (res.engaged) {
      state->responsive.insert(target);
      state->weapon_idx = 0;
      ++state->next_candidate;
    } else {
      ++state->weapon_idx;
    }
    engage_candidates(state);
  });
}

void ProbeCampaign::finish_round(std::shared_ptr<Round> state) {
  // Record this round's outcome for every target we have ever seen listen.
  for (const auto& ep : state->candidates) {
    full_raster_.try_emplace(ep, std::vector<bool>(static_cast<std::size_t>(cfg_.rounds)));
  }
  for (auto& [ep, bits] : full_raster_) {
    bits[static_cast<std::size_t>(state->round)] = state->responsive.count(ep) > 0;
  }
  if (cfg_.obs != nullptr) {
    cfg_.obs->registry.counter("campaign.rounds").inc();
    if (cfg_.obs->tracer.enabled()) {
      std::string args = "\"round\":" + std::to_string(state->round) +
                         ",\"candidates\":" + std::to_string(state->candidates.size()) +
                         ",\"responsive\":" + std::to_string(state->responsive.size());
      cfg_.obs->tracer.complete("campaign:round " + std::to_string(state->round),
                                "campaign", state->start_sim_us, args);
    }
  }
  const int next_round = state->round + 1;
  scout_->schedule_safe(cfg_.interval, [this, next_round]() { run_round(next_round); });
}

}  // namespace malnet::core
