// DDoS command detection over a restricted-mode capture (§2.5): the
// protocol-profile method (a) decodes inbound C2 traffic against the Mirai,
// Gafgyt and Daddyl33t grammars; the behavioural method (b) flags outbound
// bursts above a packets-per-second threshold to non-C2 destinations and
// associates them with the last C2 command seen. Both methods then verify:
// (a) that the bot actually flooded the commanded target, (b) that the
// burst target appears (textually or as 4 raw bytes) in the associated
// command.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "emu/sandbox.hpp"
#include "proto/attack.hpp"

namespace malnet::core {

enum class DdosMethod { kProtocolProfile, kBehaviouralHeuristic };

[[nodiscard]] std::string to_string(DdosMethod m);

struct DdosDetection {
  DdosMethod method = DdosMethod::kProtocolProfile;
  proto::AttackCommand command;   // decoded (method a) or reconstructed (b)
  bool verified = false;          // survived the §2.5 manual-style check
  double observed_pps = 0.0;      // peak outbound rate toward the target
};

struct DdosDetectOptions {
  double pps_threshold = 100.0;   // §2.5b default
  /// Verification floor: a commanded attack must produce at least this many
  /// packets toward its target to count as launched.
  int min_attack_packets = 20;
};

/// Analyses one live-run capture. `c2` is the endpoint the run allowed
/// through the perimeter. `family_hint` narrows profile decoding; without
/// it all three profiles are tried (new-variant coverage, §2.5b's reason
/// for existing).
[[nodiscard]] std::vector<DdosDetection> detect_ddos(
    const emu::SandboxReport& report, net::Endpoint c2,
    std::optional<proto::Family> family_hint = std::nullopt,
    const DdosDetectOptions& opts = {});

}  // namespace malnet::core
