#include "core/pipeline.hpp"

#include <algorithm>

#include "dns/resolver.hpp"
#include "mal/labels.hpp"
#include "util/log.hpp"

namespace malnet::core {

namespace {
constexpr std::int64_t kDayUs = 86'400'000'000LL;

util::LogStream plog() { return util::LogStream(util::LogLevel::kInfo, "pipeline"); }
}  // namespace

Pipeline::Pipeline(PipelineConfig cfg) : cfg_(std::move(cfg)) {
  sched_ = std::make_unique<sim::EventScheduler>();
  obs_.tracer.set_enabled(cfg_.trace);
  obs_.tracer.set_sim_clock([this]() { return sched_->now().us; });
  sched_->set_wall_profiling(cfg_.profile_wall);
  {
    auto& reg = obs_.registry;
    m_samples_ = &reg.counter("samples_analysed");
    m_non_mips_ = &reg.counter("non_mips_skipped");
    m_liveness_probes_ = &reg.counter("pipeline.liveness_probes");
    m_live_runs_ = &reg.counter("pipeline.live_runs");
    m_c2_observations_ = &reg.counter("pipeline.c2_observations");
    m_ddos_records_ = &reg.counter("ddos_records");
    m_c2_candidates_ = &reg.histogram("pipeline.c2_candidates", {0, 1, 2, 4, 8});
  }
  sim::NetworkConfig nc;
  nc.seed = cfg_.seed;
  nc.loss = cfg_.loss;
  net_ = std::make_unique<sim::Network>(*sched_, nc);

  botnet::WorldConfig wc = cfg_.world;
  wc.seed = cfg_.seed;
  if (cfg_.profiles) wc.profiles = cfg_.profiles.get();
  world_ = std::make_unique<botnet::World>(*net_, wc);

  if (cfg_.chaos != faultsim::Profile::kNone) {
    // The injector's streams hang off (shard seed, chaos seed), so every
    // shard gets an independent but reproducible fault schedule.
    injector_ = std::make_unique<faultsim::FaultInjector>(
        faultsim::make_fault_config(cfg_.chaos), cfg_.seed, cfg_.chaos_seed);
    injector_->install(*net_, world_->resolver_server());
  }

  emu::SandboxConfig sc;
  sc.seed = cfg_.seed ^ 0xBADC0FFEE;
  sc.obs = &obs_;
  if (cfg_.profiles) {
    sc.profiles = cfg_.profiles.get();
  } else if (cfg_.world.profiles != nullptr) {
    sc.profiles = cfg_.world.profiles;
  }
  sandbox_ = std::make_unique<emu::Sandbox>(*net_, sc);

  intel_ = std::make_unique<intel::ThreatIntel>(cfg_.seed ^ 0x71);
  for (const auto& c2 : world_->c2_plan()) {
    intel_->register_c2(c2.address, c2.birth_day, c2.cfg.domain.has_value());
  }

  analysis_host_ =
      std::make_unique<sim::Host>(*net_, net::Ipv4{192, 0, 2, 5}, "analysis");
}

Pipeline::~Pipeline() = default;

StudyResults Pipeline::run() {
  if (ran_) throw std::logic_error("Pipeline::run: already ran");
  ran_ = true;

  const auto& samples = world_->samples();
  results_.truth_planned_c2s = world_->c2_plan().size();

  std::int64_t last_day = 0;
  for (const auto& s : samples) last_day = std::max(last_day, s.first_seen_day);

  std::size_t next_sample = 0;
  for (std::int64_t day = 0; day <= last_day; ++day) {
    {
      // Day planning runs outside the event loop (ScopedTimer); the world
      // events it schedules — and their downstream chains — carry kWorld.
      obs::ScopedTimer timer(profile_[obs::Phase::kCollect]);
      sim::ScopedPhaseTag tag(*sched_,
                              static_cast<sim::PhaseTag>(obs::Phase::kWorld));
      world_->advance_to_day(day);
      if (injector_) {
        // Per-day crash rolls over the live set. The draw is a pure
        // function of (seeds, address, day), so address-ordered iteration
        // is just a convenience, not a determinism requirement.
        world_->for_each_live_c2(
            [this, day](const std::string& address, botnet::C2Server& server) {
              if (const auto outage =
                      injector_->maybe_crash_c2(util::fnv1a64(address), day)) {
                server.crash(*outage);
              }
            });
      }
    }
    {
      // Launch today's analysis chains, staggered from 00:01, all running
      // concurrently on the shared timeline (the paper's parallel
      // sandboxes). The chains inherit kSandbox and hand off to finer
      // phases (probe, live-watch) as they go.
      obs::ScopedTimer timer(profile_[obs::Phase::kCollect]);
      sim::ScopedPhaseTag tag(*sched_,
                              static_cast<sim::PhaseTag>(obs::Phase::kSandbox));
      int slot = 0;
      while (next_sample < samples.size() &&
             samples[next_sample].first_seen_day == day) {
        const botnet::PlannedSample& sample = samples[next_sample];
        const sim::SimTime start{day * kDayUs + 60'000'000LL +
                                 slot * 90'000'000LL};
        // Per-sample containment: one sample's analysis blowing up must not
        // take the study down — it lands in StudyResults::degraded instead.
        sched_->at(start, [this, &sample]() {
          try {
            analyse_sample(sample);
          } catch (const std::exception& e) {
            note_degraded(sample, std::string("exception:") + e.what());
          }
        });
        ++next_sample;
        ++slot;
      }
    }
    sched_->run_until(sim::SimTime{(day + 1) * kDayUs});
    if (day % 30 == 0) {
      plog() << "day " << day << ": " << results_.d_samples.size() << " samples, "
             << results_.d_c2s.size() << " C2s, " << results_.d_exploits.size()
             << " exploit records, " << results_.d_ddos.size() << " DDoS records";
    }
  }
  // Let late live-runs finish.
  sched_->run_until(sim::SimTime{(last_day + 2) * kDayUs});
  world_->advance_to_day(last_day + 2);

  if (cfg_.run_probe_campaign) run_probe_campaign();

  {
    obs::ScopedTimer timer(profile_[obs::Phase::kFinalize]);
    finalize_results();
    results_.sim_events = sched_->executed();
    results_.sandbox_runs = sandbox_->total_runs();
    results_.truth_commands_issued = world_->all_issued().size();
    harvest_observability();
  }
  results_.metrics = obs_.registry.snapshot();
  results_.profile = profile_;
  results_.trace = obs_.tracer.take();
  return std::move(results_);
}

void Pipeline::harvest_observability() {
  // End-of-run totals folded into the registry so one snapshot carries the
  // whole story. Everything here is a sim-derived integer (the §10
  // determinism rule); harvest counters start at zero, so a single
  // inc(total) leaves them exactly equal to the source of truth.
  auto& reg = obs_.registry;
  reg.counter("sim_events").inc(sched_->executed());
  reg.counter("net.packets_sent").inc(net_->packets_transmitted());
  reg.counter("net.packets_delivered").inc(net_->packets_delivered());
  reg.counter("net.packets_lost").inc(net_->packets_lost());
  reg.counter("net.packets_dark").inc(net_->packets_dark());
  reg.counter("net.dns_queries").inc(net_->dns_queries());
  reg.counter("campaign.scout_probes").inc(results_.d_pc2.scout_probes);
  reg.counter("campaign.weapon_runs").inc(results_.d_pc2.weapon_runs);
  reg.counter("campaign.banner_filtered").inc(results_.d_pc2.banner_filtered);
  auto& lifespan = reg.histogram("c2.lifespan_days", {0, 1, 7, 30, 90, 365});
  for (const auto& [addr, rec] : results_.d_c2s) {
    if (rec.ever_live()) lifespan.record(rec.observed_lifespan_days());
  }

  // Chaos counters are registered only when chaos is on (or something
  // actually degraded): a clean run's metrics JSON must stay byte-identical
  // to a build without the fault layer.
  if (injector_) {
    const faultsim::FaultStats& fs = injector_->stats();
    reg.counter("faults_injected").inc(fs.total());
    reg.counter("resolver_retries").inc(resolver_retries_);
    reg.counter("chaos.packets_dropped_burst").inc(fs.packets_dropped_burst);
    reg.counter("chaos.packets_duplicated").inc(fs.packets_duplicated);
    reg.counter("chaos.packets_reordered").inc(fs.packets_reordered);
    reg.counter("chaos.packets_truncated").inc(fs.packets_truncated);
    reg.counter("chaos.packets_corrupted").inc(fs.packets_corrupted);
    reg.counter("chaos.latency_spikes").inc(fs.latency_spikes);
    reg.counter("chaos.partitions_started").inc(fs.partitions_started);
    reg.counter("chaos.partition_drops").inc(fs.partition_drops);
    reg.counter("chaos.dns_servfails").inc(fs.dns_servfails);
    reg.counter("chaos.dns_drops").inc(fs.dns_drops);
    reg.counter("chaos.c2_crashes").inc(fs.c2_crashes);
  }
  if (injector_ || !results_.degraded.empty()) {
    reg.counter("samples_degraded").inc(results_.degraded.size());
  }

  // Per-phase rollup: event counts (and wall-clock under --profile) come
  // from the scheduler's tag arrays; ops are phase-defined totals.
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    profile_.phases[i].sim_events +=
        sched_->executed_by_tag(static_cast<sim::PhaseTag>(i));
    profile_.phases[i].wall_ns +=
        sched_->wall_ns_by_tag(static_cast<sim::PhaseTag>(i));
  }
  profile_[obs::Phase::kCollect].ops = m_samples_->value() + m_non_mips_->value();
  profile_[obs::Phase::kSandbox].ops = sandbox_->total_runs();
  profile_[obs::Phase::kProbe].ops = m_liveness_probes_->value();
  profile_[obs::Phase::kLiveWatch].ops = m_live_runs_->value();
  profile_[obs::Phase::kCampaign].ops =
      static_cast<std::uint64_t>(results_.d_pc2.rounds);
  profile_[obs::Phase::kFinalize].ops = results_.d_c2s.size();
}

void Pipeline::analyse_sample(const botnet::PlannedSample& sample) {
  // Architecture gate (§2.2): the feeds deliver ARM/x86 builds too; only
  // MIPS-32 binaries enter D-Samples and the sandbox.
  if (const auto parsed = mal::parse(sample.binary);
      parsed && parsed->arch != mal::Arch::kMips32) {
    ++results_.non_mips_skipped;
    m_non_mips_->inc();
    return;
  }
  emu::SandboxOptions opts;
  opts.mode = emu::SandboxMode::kObserve;
  opts.duration = cfg_.observe_duration;
  opts.handshaker_threshold = cfg_.handshaker_threshold;
  sandbox_->start(sample.binary, opts, [this, &sample](const emu::SandboxReport& r) {
    try {
      handle_observe_report(sample, r);
    } catch (const std::exception& e) {
      note_degraded(sample, std::string("exception:") + e.what());
    }
  });
}

void Pipeline::note_degraded(const botnet::PlannedSample& sample,
                             std::string reason) {
  util::log_line(util::LogLevel::kWarn, "pipeline",
                 "degraded sample " + sample.sha256.substr(0, 8) + ": " + reason);
  results_.degraded.push_back(
      DegradedSample{sample.sha256, sample.first_seen_day, std::move(reason)});
}

void Pipeline::handle_observe_report(const botnet::PlannedSample& sample,
                                     const emu::SandboxReport& report) {
  SampleRecord rec;
  rec.sha256 = sample.sha256;
  rec.day = sample.first_seen_day;
  rec.source = sample.source;
  rec.vt_detections = sample.vt_detections;
  rec.activated = report.parsed && report.activated;
  rec.evasion_abort = report.evasion_abort;
  // Static labelling: YARA rules over the binary, AVClass as fallback
  // (§2.2 — including AVClass's Mozi->Mirai confusion; YARA usually saves
  // the day, which is why the P2P filter still works).
  rec.label = mal::combined_label(sample.binary, sample.truth_family);
  rec.p2p = proto::is_p2p(rec.label);
  label_by_sample_[sample.sha256] = rec.label;

  // D-Exploits: attribute the handshaker harvest.
  for (const auto& finding : identify_exploits(report)) {
    ExploitRecord er;
    er.sample_sha = sample.sha256;
    er.day = sample.first_seen_day;
    er.vuln = finding.vuln;
    er.downloader_host = finding.downloader_host;
    er.loader_name = finding.loader_name;
    if (!finding.downloader_host.empty()) {
      results_.downloader_hosts.insert(finding.downloader_host);
    }
    results_.d_exploits.push_back(std::move(er));
  }

  auto candidates = detect_c2(report, sandbox_->martian());
  if (candidates.size() > static_cast<std::size_t>(cfg_.max_candidates_per_sample)) {
    candidates.resize(static_cast<std::size_t>(cfg_.max_candidates_per_sample));
  }
  for (const auto& c : candidates) rec.c2_addresses.push_back(c.address);
  results_.d_samples.push_back(std::move(rec));
  m_samples_->inc();
  m_c2_candidates_->record(static_cast<std::int64_t>(candidates.size()));

  if (results_.d_samples.back().p2p || candidates.empty()) return;
  // The probing chain (DNS resolution + weaponized runs) is its own phase.
  sim::ScopedPhaseTag tag(*sched_, static_cast<sim::PhaseTag>(obs::Phase::kProbe));
  probe_candidate(sample, std::move(candidates), 0, /*live_found=*/false);
}

void Pipeline::probe_candidate(const botnet::PlannedSample& sample,
                               std::vector<C2Candidate> candidates, std::size_t idx,
                               bool live_found) {
  if (idx >= candidates.size()) return;
  const C2Candidate cand = candidates[idx];

  auto continue_with_ip = [this, &sample, candidates = std::move(candidates), idx,
                           live_found, cand](net::Ipv4 real_ip) mutable {
    if (real_ip.is_unspecified()) {
      probe_candidate(sample, std::move(candidates), idx + 1, live_found);
      return;
    }
    Weapon weapon{sample.binary, cand.endpoint()};
    m_liveness_probes_->inc();
    probe_liveness(
        *sandbox_, weapon, {real_ip, cand.port},
        [this, &sample, candidates = std::move(candidates), idx, live_found, cand,
         real_ip](LivenessResult res) mutable {
          record_c2_observation(sample, cand, real_ip, res.engaged);
          bool now_live = live_found;
          // The live-run budget is keyed by resolved IP so a domain-fronted
          // server and its raw address share one budget.
          const std::string budget_key = net::to_string(real_ip);
          if (res.engaged && !live_found &&
              live_runs_per_c2_[budget_key] < cfg_.max_live_runs_per_c2) {
            now_live = true;
            ++live_runs_per_c2_[budget_key];
            start_live_run(sample, cand, real_ip);
          }
          probe_candidate(sample, std::move(candidates), idx + 1, now_live);
        },
        cfg_.probe_duration,
        // Under chaos a dead-looking target may just be injected loss;
        // spend a second attempt before declaring it down.
        ProbePolicy{injector_ ? 2 : 1, sim::Duration::seconds(30)});
  };

  if (cand.is_dns) {
    // Resolve the name through real DNS to find the probe target (§2.3a).
    // Chaos runs retransmit against injected SERVFAIL/drop; clean runs keep
    // the classic single-shot query.
    dns::ResolveOptions ropts;
    if (injector_) {
      ropts.max_retries = 2;
      ropts.on_retry = [this]() { ++resolver_retries_; };
    }
    dns::resolve(*analysis_host_, world_->resolver(), cand.address,
                 [this, sha = sample.sha256, day = sample.first_seen_day,
                  addr = cand.address,
                  cw = std::move(continue_with_ip)](std::optional<net::Ipv4> ip) mutable {
                   if (!ip && injector_) {
                     // Could be NXDOMAIN or injected failure; under chaos we
                     // conservatively flag the sample's C2 check as degraded.
                     results_.degraded.push_back(DegradedSample{
                         std::move(sha), day, "dns:" + std::move(addr)});
                   }
                   cw(ip.value_or(net::Ipv4{}));
                 },
                 std::move(ropts));
  } else {
    continue_with_ip(cand.resolved_ip);
  }
}

void Pipeline::record_c2_observation(const botnet::PlannedSample& sample,
                                     const C2Candidate& cand, net::Ipv4 real_ip,
                                     bool live) {
  const std::int64_t day = sample.first_seen_day;
  auto [it, inserted] = results_.d_c2s.try_emplace(cand.address);
  C2Record& rec = it->second;
  if (inserted) {
    rec.address = cand.address;
    rec.is_dns = cand.is_dns;
    rec.ip = real_ip;
    rec.port = cand.port;
    rec.discovery_day = day;
    if (const auto* as = world_->asdb().by_ip(real_ip)) {
      rec.asn = as->asn;
      rec.as_country = as->country;
    }
    rec.vt_vendors_same_day = intel_->vendors_flagging(cand.address, day);
    rec.vt_malicious_same_day = rec.vt_vendors_same_day > 0;
  }
  m_c2_observations_->inc();
  ++rec.distinct_samples;
  if (rec.referred_days.empty() || rec.referred_days.back() != day) {
    rec.referred_days.push_back(day);
  }
  if (live && (rec.live_days.empty() || rec.live_days.back() != day)) {
    rec.live_days.push_back(day);
  }
}

void Pipeline::start_live_run(const botnet::PlannedSample& sample,
                              const C2Candidate& cand, net::Ipv4 real_ip) {
  plog() << "live run: sample " << sample.sha256.substr(0, 8) << " c2 "
         << cand.address << " via " << net::to_string(real_ip) << ':'
         << cand.port;
  m_live_runs_->inc();
  if (obs_.tracer.enabled()) {
    obs_.tracer.instant("live-run:start", "pipeline",
                        "\"c2\":\"" + obs::json_escape(cand.address) + "\"");
  }
  // The 2 h restricted watch and everything it triggers is kLiveWatch.
  sim::ScopedPhaseTag tag(*sched_,
                          static_cast<sim::PhaseTag>(obs::Phase::kLiveWatch));
  emu::SandboxOptions opts;
  opts.mode = emu::SandboxMode::kLive;
  opts.duration = cfg_.live_duration;
  opts.allowed_c2 = net::Endpoint{real_ip, cand.port};
  // Real bots cycle through their address list indefinitely; that loop is
  // what rides out post-probe dormancy within the 2 h window.
  opts.c2_retry_limit = 3;
  opts.c2_retry_delay = sim::Duration::seconds(60);
  const std::string address = cand.address;
  const net::Endpoint c2{real_ip, cand.port};
  sandbox_->start(
      sample.binary, opts,
      [this, &sample, address, c2](const emu::SandboxReport& report) {
        plog() << "live run done: " << sample.sha256.substr(0, 8)
               << " capture=" << report.capture.size()
               << " cmds=" << report.commands.size();
        std::optional<proto::Family> hint;
        const auto lit = label_by_sample_.find(sample.sha256);
        if (lit != label_by_sample_.end()) hint = lit->second;
        DdosDetectOptions dopts;
        dopts.pps_threshold = cfg_.pps_threshold;
        for (auto& det : detect_ddos(report, c2, hint, dopts)) {
          if (!det.verified) continue;  // §2.5: manual verification gate
          DdosRecord dr;
          dr.sample_sha = sample.sha256;
          dr.day = sample.first_seen_day;
          dr.c2_address = address;
          dr.c2 = c2;
          if (const auto* as = world_->asdb().by_ip(c2.ip)) {
            dr.c2_asn = as->asn;
            dr.c2_country = as->country;
          }
          dr.detection = std::move(det);
          if (obs_.tracer.enabled()) {
            obs_.tracer.instant(
                "ddos:detected", "pipeline",
                "\"method\":\"" + obs::json_escape(to_string(dr.detection.method)) +
                    "\",\"c2\":\"" + obs::json_escape(address) + "\"");
          }
          m_ddos_records_->inc();
          results_.d_ddos.push_back(std::move(dr));
        }
      });
}

void Pipeline::run_probe_campaign() {
  // Weapons: one Gafgyt and one Mirai binary with IP-based C2s (§2.3b).
  std::vector<Weapon> weapons;
  for (const proto::Family fam : {proto::Family::kGafgyt, proto::Family::kMirai}) {
    for (const auto& s : world_->samples()) {
      if (s.truth_family != fam || s.truth_c2_refs.empty()) continue;
      const auto* plan = world_->find_c2(s.truth_c2_refs.front());
      if (plan == nullptr || plan->cfg.domain) continue;
      weapons.push_back(Weapon{s.binary, {plan->cfg.ip, plan->cfg.port}});
      break;
    }
  }
  if (weapons.empty()) return;

  // Everything from here (probe-world timers included) is kCampaign.
  sim::ScopedPhaseTag campaign_tag(
      *sched_, static_cast<sim::PhaseTag>(obs::Phase::kCampaign));
  probe_world_ = std::make_unique<botnet::ProbeWorld>(
      botnet::build_probe_world(*net_, botnet::ProbeWorldConfig{cfg_.seed ^ 0x9C2}));

  ProbeCampaignConfig pc;
  for (const auto& s : probe_world_->subnets) pc.subnets.push_back(s);
  pc.ports = botnet::table5_ports();
  pc.rounds = cfg_.probe_rounds;
  pc.obs = &obs_;

  bool finished = false;
  campaign_ = std::make_unique<ProbeCampaign>(
      *net_, *sandbox_, std::move(pc), std::move(weapons),
      [this, &finished](ProbeCampaignResult res) {
        results_.d_pc2 = std::move(res);
        finished = true;
      });
  campaign_->start();
  // 84 rounds x 4 h plus slack; C2 duty-cycle timers run forever, so bound
  // by time, not queue exhaustion.
  const sim::SimTime deadline =
      sched_->now() + sim::Duration::hours(4) * (cfg_.probe_rounds + 4);
  while (!finished && sched_->now() < deadline) {
    sched_->run_until(sched_->now() + sim::Duration::hours(1));
  }
  campaign_.reset();
  probe_world_.reset();
}

void Pipeline::finalize_results() {
  for (auto& [addr, rec] : results_.d_c2s) {
    rec.vt_malicious_requery = intel_->is_malicious(addr, cfg_.requery_day);
    rec.is_downloader =
        results_.downloader_hosts.count(net::to_string(rec.ip)) > 0 ||
        results_.downloader_hosts.count(addr) > 0;
  }
}

}  // namespace malnet::core
