// C2-bound traffic classification (the CnCHunter analysis of §2.1 mode 1):
// given a sandbox capture from an *observe* run, identify the C2 addresses
// the binary refers to. Reported precision in the paper is ~90% [17]; the
// classifier here errs the same way — anything that beacons like a C2 is a
// candidate, including the occasional benign-looking endpoint.
#pragma once

#include <string>
#include <vector>

#include "emu/sandbox.hpp"
#include "net/ipv4.hpp"

namespace malnet::core {

struct C2Candidate {
  /// The address as the malware referred to it: a domain name if the flow
  /// followed a DNS resolution, else the dotted-quad literal.
  std::string address;
  bool is_dns = false;
  net::Ipv4 resolved_ip;  // unspecified for DNS names the sandbox faked
  net::Port port = 0;
  int connection_attempts = 0;

  [[nodiscard]] net::Endpoint endpoint() const { return {resolved_ip, port}; }
};

struct C2DetectOptions {
  /// Flows on a port contacted with at least this many distinct addresses
  /// are scanning, not C2 (the inverse of the handshaker intuition).
  int scan_port_distinct_ips = 5;
  /// Minimum connection attempts (SYNs) to one endpoint to call it C2 —
  /// retry behaviour is the C2 tell; one-shot contacts are noise.
  int min_attempts = 2;
  /// Exclude flows that carry a plain HTTP request from the guest: benign
  /// periodic beacons (IP-echo / update checks) repeat like C2s but speak
  /// ordinary HTTP. Disabling this reproduces the naive classifier whose
  /// precision is ~90% (the figure CnCHunter reports [17]).
  bool filter_http_flows = true;
};

/// Classifies the capture. `martian` is the sandbox's wildcard-DNS answer
/// address (flows to it are attributed to the preceding DNS query).
[[nodiscard]] std::vector<C2Candidate> detect_c2(const emu::SandboxReport& report,
                                                 net::Ipv4 martian,
                                                 const C2DetectOptions& opts = {});

}  // namespace malnet::core
