#include "core/c2detect.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "dns/message.hpp"

namespace malnet::core {

std::vector<C2Candidate> detect_c2(const emu::SandboxReport& report,
                                   net::Ipv4 martian, const C2DetectOptions& opts) {
  (void)martian;  // addresses are resolved from observed DNS answers, not hints

  // Pass 1: DNS resolution events (inbound answers), in time order.
  struct Resolution {
    util::SimTime time;
    std::string name;
    net::Ipv4 answer;
  };
  std::vector<Resolution> resolutions;
  for (const auto& p : report.capture) {
    if (p.proto != net::Protocol::kUdp || p.src_port != 53) continue;
    const auto msg = dns::decode(p.payload);
    if (!msg || !msg->is_response || msg->answers.empty()) continue;
    resolutions.push_back({p.time, msg->answers.front().name,
                           msg->answers.front().address});
  }

  // Pass 2: outbound TCP connection attempts grouped by endpoint.
  struct FlowStats {
    int attempts = 0;
    util::SimTime first_syn{INT64_MAX};
  };
  std::map<net::Endpoint, FlowStats> flows;
  std::map<net::Port, std::set<net::Ipv4>> per_port_dsts;
  std::set<net::Endpoint> http_flows;
  for (const auto& p : report.capture) {
    if (p.proto == net::Protocol::kTcp && !p.payload.empty()) {
      // First guest payload of a flow that reads like an HTTP request.
      const std::string head = util::to_string(
          util::BytesView{p.payload.data(), std::min<std::size_t>(5, p.payload.size())});
      if (head.rfind("GET ", 0) == 0 || head.rfind("POST ", 0) == 0 ||
          head.rfind("HEAD ", 0) == 0) {
        http_flows.insert(p.destination());
      }
    }
    if (p.proto != net::Protocol::kTcp || !p.flags.syn || p.flags.ack) continue;
    // Outbound = sourced by the guest; the guest is whoever sends SYNs that
    // also appear as the src of non-SYN traffic. Simpler and sufficient:
    // SYN packets in a guest-side capture are always outbound.
    auto& fs = flows[p.destination()];
    ++fs.attempts;
    fs.first_syn = std::min(fs.first_syn, p.time);
    per_port_dsts[p.dst_port].insert(p.dst);
  }

  std::vector<C2Candidate> out;
  for (const auto& [ep, fs] : flows) {
    if (fs.attempts < opts.min_attempts) continue;
    if (opts.filter_http_flows && http_flows.count(ep) > 0) continue;
    // Scan-port suppression: sweeps touch each address once, so repeated
    // attempts to one endpoint are C2 retries even on a swept port (C2s on
    // 23/tcp coexist with telnet sweeps in the same binary).
    if (fs.attempts <= opts.min_attempts &&
        per_port_dsts[ep.port].size() >=
            static_cast<std::size_t>(opts.scan_port_distinct_ips)) {
      continue;  // scanning traffic
    }
    C2Candidate cand;
    cand.resolved_ip = ep.ip;
    cand.port = ep.port;
    cand.connection_attempts = fs.attempts;
    // Attribute to the latest DNS resolution answering with this address
    // before the first connection attempt.
    const Resolution* best = nullptr;
    for (const auto& r : resolutions) {
      if (r.answer == ep.ip && r.time <= fs.first_syn) best = &r;
    }
    if (best != nullptr) {
      cand.address = best->name;
      cand.is_dns = true;
    } else {
      cand.address = net::to_string(ep.ip);
    }
    out.push_back(std::move(cand));
  }
  // Strongest beacon first; ties broken by contact order (malware tries its
  // primary C2 before any fallback).
  std::sort(out.begin(), out.end(), [&](const C2Candidate& a, const C2Candidate& b) {
    if (a.connection_attempts != b.connection_attempts) {
      return a.connection_attempts > b.connection_attempts;
    }
    return flows.at(a.endpoint()).first_syn < flows.at(b.endpoint()).first_syn;
  });
  return out;
}

}  // namespace malnet::core
