// Offline re-analysis: run the C2 classifier and the DDoS command recovery
// over a previously saved pcap, without a sandbox. This is the artifact
// workflow the paper's open-data page implies — captures are shared, and
// anyone can re-derive the findings from them.
#pragma once

#include <string>

#include "emu/sandbox.hpp"

namespace malnet::core {

/// Wraps a packet list as a minimal SandboxReport so the capture-driven
/// analyses (detect_c2, detect_ddos) run unchanged on it.
[[nodiscard]] emu::SandboxReport report_from_packets(std::vector<net::Packet> packets);

/// Loads a pcap file written by SandboxReport::save_pcap (or any raw-IPv4
/// pcap) into an analysable report. Throws on unreadable/malformed files.
[[nodiscard]] emu::SandboxReport report_from_pcap(const std::string& path);

}  // namespace malnet::core
