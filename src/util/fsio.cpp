#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace malnet::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Splits `path` into (directory, name); the directory is "." when the path
/// has no slash so the temp always lands next to the target.
std::pair<std::string, std::string> split_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return {".", path};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

}  // namespace

std::string atomic_temp_path(const std::string& path, long pid) {
  const auto [dir, name] = split_path(path);
  return dir + "/." + name + ".tmp" + std::to_string(pid);
}

bool is_atomic_temp_name(std::string_view name) {
  if (name.empty() || name.front() != '.') return false;
  const auto tmp = name.rfind(".tmp");
  if (tmp == std::string_view::npos) return false;
  // Everything after ".tmp" must be the writer's pid: at least one digit.
  const auto pid = name.substr(tmp + 4);
  if (pid.empty()) return false;
  for (const char c : pid) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

void write_file_atomic(const std::string& path, BytesView data) {
  const std::string tmp = atomic_temp_path(path, static_cast<long>(::getpid()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("write_file_atomic: cannot open " + tmp + ": " +
                             errno_text());
  }
  // On any failure past this point the temp must vanish so the target's
  // directory never accumulates partial bytes under a name a reader could
  // be told about.
  const auto fail = [&](const char* stage) -> std::runtime_error {
    const std::string why = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    return std::runtime_error(std::string("write_file_atomic: ") + stage +
                              " failed for " + tmp + ": " + why);
  };

  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw fail("write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) throw fail("fsync");
  if (::close(fd) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    throw std::runtime_error("write_file_atomic: close failed for " + tmp +
                             ": " + why);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename to " + path + ": " + why);
  }
  // Durability of the rename itself needs the directory entry flushed.
  // Failure to open the directory degrades durability, not atomicity.
  const auto dir = split_path(path).first;
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

void write_file_atomic(const std::string& path, std::string_view text) {
  write_file_atomic(
      path, BytesView{reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()});
}

}  // namespace malnet::util
