#include "util/thread_pool.hpp"

#include <exception>

namespace malnet::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &fn, &errors] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace malnet::util
