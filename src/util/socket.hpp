// Minimal POSIX TCP helpers for the serving layer (DESIGN.md §13).
//
// Everything here is deliberately thin: RAII file descriptors, IPv4
// listen/connect with explicit millisecond timeouts, and poll()-guarded
// send/recv loops. No global state, no hidden retries — retry policy
// belongs to callers (serve::Client mirrors the dns::Resolver
// timeout/backoff discipline on top of these primitives).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/bytes.hpp"

namespace malnet::util {

/// RAII owner of a POSIX file descriptor. Move-only; close() on scope exit.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Gives up ownership without closing.
  int release() { return std::exchange(fd_, -1); }
  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

struct ListenResult {
  Fd fd;
  std::uint16_t port = 0;  // actual bound port (resolves port 0 requests)
};

/// Binds and listens on an IPv4 host:port (port 0 picks an ephemeral port,
/// reported back in the result). SO_REUSEADDR is set; the socket is
/// non-blocking. Throws std::runtime_error on failure.
[[nodiscard]] ListenResult tcp_listen(const std::string& host,
                                      std::uint16_t port, int backlog = 256);

/// Connects to an IPv4 host:port with a bounded wait. Returns an invalid Fd
/// on refusal, timeout, or bad address — never throws. The returned socket
/// is blocking (callers use the timed send/recv helpers below).
[[nodiscard]] Fd tcp_connect(const std::string& host, std::uint16_t port,
                             int timeout_ms);

void set_nonblocking(int fd, bool nonblocking);

/// Writes all of `data`, waiting up to `timeout_ms` for writability between
/// partial writes. False on error, peer close, or timeout.
[[nodiscard]] bool send_all(int fd, BytesView data, int timeout_ms);

/// Reads up to `n` bytes once the descriptor is readable. Returns the byte
/// count, 0 on orderly peer close, -1 on error or timeout.
[[nodiscard]] int recv_some(int fd, std::uint8_t* buf, std::size_t n,
                            int timeout_ms);

/// "ip:port" of the connected peer, or "?" when the socket has none (the
/// admin/status pages tolerate the unknown case rather than erroring).
[[nodiscard]] std::string peer_address(int fd);

/// "host:port" or bare "port" (host defaults to 127.0.0.1). Nullopt on a
/// malformed port.
[[nodiscard]] std::optional<std::pair<std::string, std::uint16_t>>
parse_listen_spec(std::string_view spec);

/// Raises the process soft RLIMIT_NOFILE toward `want` (capped at the hard
/// limit). Returns the soft limit now in effect — load generators check it
/// before opening a thousand client sockets.
[[nodiscard]] std::size_t raise_fd_limit(std::size_t want);

}  // namespace malnet::util
