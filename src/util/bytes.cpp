#include "util/bytes.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace malnet::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void ByteWriter::raw(std::string_view data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::lp16(BytesView data) {
  if (data.size() > 0xFFFF) throw std::length_error("lp16 payload too large");
  u16(static_cast<std::uint16_t>(data.size()));
  raw(data);
}

void ByteWriter::lp16(std::string_view data) {
  lp16(BytesView{reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw std::out_of_range("patch_u16 out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteReader::need(std::size_t n) const {
  // Subtraction form: `pos_ + n` could wrap for adversarial n (pos_ never
  // exceeds size, so the right-hand side cannot underflow).
  if (n > data_.size() - pos_) {
    throw TruncatedInput("need " + std::to_string(n) + " bytes at offset " +
                         std::to_string(pos_) + ", have " +
                         std::to_string(data_.size() - pos_));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  auto hi = static_cast<std::uint32_t>(u16());
  auto lo = static_cast<std::uint32_t>(u16());
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  auto hi = static_cast<std::uint64_t>(u32());
  auto lo = static_cast<std::uint64_t>(u32());
  return (hi << 32) | lo;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Bytes ByteReader::lp16() { return raw(u16()); }

void ByteReader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

std::string hexdump(BytesView data, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::ostringstream os;
  const std::size_t n = std::min(data.size(), max_bytes);
  for (std::size_t row = 0; row < n; row += 16) {
    os << kHex[(row >> 12) & 0xF] << kHex[(row >> 8) & 0xF] << kHex[(row >> 4) & 0xF]
       << kHex[row & 0xF] << "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < n) {
        os << kHex[data[row + i] >> 4] << kHex[data[row + i] & 0xF] << ' ';
      } else {
        os << "   ";
      }
      if (i == 7) os << ' ';
    }
    os << " |";
    for (std::size_t i = 0; i < 16 && row + i < n; ++i) {
      const char c = static_cast<char>(data[row + i]);
      os << (std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    os << "|\n";
  }
  if (data.size() > max_bytes) {
    os << "... (" << data.size() - max_bytes << " more bytes)\n";
  }
  return os.str();
}

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  Bytes out;
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int v = nibble(c);
    if (v < 0) throw std::invalid_argument("from_hex: bad character");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("from_hex: odd nibble count");
  return out;
}

std::string to_hex(BytesView data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) {
  // An empty span may carry data() == nullptr; std::string(nullptr, 0) is
  // undefined, so the empty case must short-circuit.
  if (b.empty()) return {};
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

bool contains(BytesView haystack, BytesView needle) {
  if (needle.empty()) return true;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}

bool contains(BytesView haystack, std::string_view needle) {
  return contains(haystack,
                  BytesView{reinterpret_cast<const std::uint8_t*>(needle.data()),
                            needle.size()});
}

}  // namespace malnet::util
