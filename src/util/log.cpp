#include "util/log.hpp"

#include <iostream>
#include <mutex>

namespace malnet::util {

namespace {
LogLevel g_level = LogLevel::kOff;
const char* name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) return;
  // Parallel shard pipelines log concurrently; serialize whole lines.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << '[' << name(level) << "] " << component << ": " << message << '\n';
}

LogStream::~LogStream() { log_line(level_, component_, os_.str()); }

}  // namespace malnet::util
