#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace malnet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
const char* name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> log_level_from_string(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  // Parallel shard pipelines log concurrently; serialize whole lines so
  // shard output never interleaves mid-line.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << '[' << name(level) << "] " << component << ": " << message << '\n';
}

LogStream::~LogStream() { log_line(level_, component_, os_.str()); }

}  // namespace malnet::util
