#include "util/simtime.hpp"

#include <array>
#include <sstream>

namespace malnet::util {

std::string to_string(SimTime t) {
  const std::int64_t day = t.day();
  std::int64_t rem = t.us - day * Duration::days(1).us;
  const std::int64_t h = rem / Duration::hours(1).us;
  rem -= h * Duration::hours(1).us;
  const std::int64_t m = rem / Duration::minutes(1).us;
  rem -= m * Duration::minutes(1).us;
  const std::int64_t s = rem / Duration::seconds(1).us;
  std::ostringstream os;
  os << 'd' << day << ' ';
  os.fill('0');
  os.width(2);
  os << h << ':';
  os.width(2);
  os << m << ':';
  os.width(2);
  os << s;
  return os.str();
}

std::string to_string(Duration d) {
  std::ostringstream os;
  if (d.us < 0) {
    os << '-';
    d.us = -d.us;
  }
  if (d.us >= Duration::days(1).us) {
    os << d.us / Duration::days(1).us << "d"
       << (d.us % Duration::days(1).us) / Duration::hours(1).us << "h";
  } else if (d.us >= Duration::hours(1).us) {
    os << d.us / Duration::hours(1).us << "h"
       << (d.us % Duration::hours(1).us) / Duration::minutes(1).us << "m";
  } else if (d.us >= Duration::seconds(1).us) {
    os << d.us / Duration::seconds(1).us << "s";
  } else {
    os << d.us << "us";
  }
  return os.str();
}

namespace {
// Days per month for 2021..2023, enough to label a 1-year study starting
// 2021-03-29 plus slack.
constexpr std::array<int, 12> kDays2021{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
constexpr std::array<int, 12> kDays2022{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
}  // namespace

std::string study_date(std::int64_t day_index) {
  int year = 2021, month = 3, day = 29;  // epoch: 2021-03-29
  std::int64_t remaining = day_index;
  while (remaining > 0) {
    const auto& table = (year == 2021) ? kDays2021 : kDays2022;
    const int dim = table[static_cast<std::size_t>(month - 1)];
    const std::int64_t left_in_month = dim - day;
    if (remaining <= left_in_month) {
      day += static_cast<int>(remaining);
      remaining = 0;
    } else {
      remaining -= left_in_month + 1;
      day = 1;
      if (++month > 12) {
        month = 1;
        ++year;
      }
    }
  }
  std::ostringstream os;
  os << year << '-';
  os.fill('0');
  os.width(2);
  os << month << '-';
  os.width(2);
  os << day;
  return os.str();
}

namespace {
// Howard Hinnant's days_from_civil: serial day count from 1970-01-01.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);
  const auto doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}
}  // namespace

std::int64_t civil_to_study_day(int year, int month, int day) {
  static const std::int64_t kEpoch = days_from_civil(2021, 3, 29);
  return days_from_civil(year, month, day) - kEpoch;
}

}  // namespace malnet::util
