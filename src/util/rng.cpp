#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace malnet::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed;
  inc_ = (splitmix64(sm) ^ stream) | 1ULL;
  state_ = splitmix64(sm);
  (*this)();  // advance past the (correlated) initial state
}

Rng::result_type Rng::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

Rng Rng::fork(std::string_view name) {
  const std::uint64_t child_seed =
      (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return Rng(child_seed, fnv1a64(name));
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo + 1;  // span==0 means full 64-bit range
  std::uint64_t r = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  if (span != 0) r %= span;
  return lo + r;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return lo + static_cast<std::int64_t>(
                  uniform(0, static_cast<std::uint64_t>(hi - lo)));
}

double Rng::uniform01() {
  // 53 random bits -> double in [0,1).
  const std::uint64_t r = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("Rng::geometric: p out of (0,1]");
  if (p == 1.0) return 0;
  const double u = uniform01();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda <= 0");
  return -std::log1p(-uniform01()) / lambda;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::weighted: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted: non-positive total");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating point slop
}

std::size_t Rng::weighted(std::initializer_list<double> weights) {
  return weighted(std::span<const double>(weights.begin(), weights.size()));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n == 0");
  if (s <= 0.0) throw std::invalid_argument("Rng::zipf: s <= 0");
  // Inverse-CDF on the (truncated) harmonic weights. n is small in our use
  // (hundreds to thousands), so the linear scan is fine and exact.
  double total = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double x = uniform01() * total;
  for (std::uint64_t k = 1; k <= n; ++k) {
    x -= 1.0 / std::pow(static_cast<double>(k), s);
    if (x < 0.0) return k;
  }
  return n;
}

}  // namespace malnet::util
