// Crash-safe file replacement. write_file_atomic() is the one primitive
// every durable artifact goes through (MDS dataset saves, store segments,
// the store manifest): the bytes are staged in a hidden temp file in the
// target's directory, fsync'd, and renamed over the target. A reader can
// therefore never observe a half-written file — after a crash the target is
// either the complete old version or the complete new one, and the only
// possible litter is a temp file that the writer's next run (or the store's
// garbage collector) removes.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace malnet::util {

/// Name of the staging file write_file_atomic uses for `path` in `pid`:
/// ".<name>.tmp<pid>" in the same directory (same filesystem, so the final
/// rename is atomic). Exposed so cleanup code can recognise stale temps.
[[nodiscard]] std::string atomic_temp_path(const std::string& path, long pid);

/// True if `name` (a bare file name, no directory) looks like a staging
/// file left behind by a crashed write_file_atomic.
[[nodiscard]] bool is_atomic_temp_name(std::string_view name);

/// Atomically replaces `path` with `data`: write temp + fsync + rename +
/// best-effort directory fsync. Throws std::runtime_error on any I/O
/// failure; on failure the target is untouched and the temp is unlinked.
void write_file_atomic(const std::string& path, BytesView data);
void write_file_atomic(const std::string& path, std::string_view text);

}  // namespace malnet::util
