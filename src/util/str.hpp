// Small string helpers shared across parsers (Gafgyt/Daddyl33t text C2
// protocols, IDS rules, CSV) and report rendering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace malnet::util {

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any run of whitespace; no empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Strict unsigned parse; rejects empty strings, signs, and trailing junk.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// printf-lite replacement: substitutes "{}" occurrences in order.
[[nodiscard]] std::string format_args(std::string_view fmt,
                                      const std::vector<std::string>& args);

/// Fixed-width left/right padding with spaces (for ASCII tables).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fixed(double v, int digits);

/// Formats a fraction as a percentage string, e.g. 0.153 -> "15.3%".
[[nodiscard]] std::string percent(double fraction, int digits = 1);

}  // namespace malnet::util
