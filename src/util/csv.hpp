// Minimal CSV emitter for exporting dataset rows (D-C2s, D-Exploits, …) so
// downstream tooling can re-plot the figures.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace malnet::util {

/// Builds an RFC-4180-ish CSV document in memory. Fields containing commas,
/// quotes or newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  CsvWriter& field(std::string_view v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(double v, int digits = 4);
  /// Ends the current row; throws std::logic_error if the field count does
  /// not match the header width.
  void end_row();

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t rows() const { return rows_; }

 private:
  static std::string escape(std::string_view v);
  std::size_t width_;
  std::size_t in_row_ = 0;
  std::size_t rows_ = 0;
  std::ostringstream os_;
};

}  // namespace malnet::util
