// Deterministic random number generation.
//
// Everything in this project is seeded: the same top-level seed regenerates
// every dataset, table and figure bit-identically. We use PCG32 (small, fast,
// excellent statistical quality) seeded through SplitMix64 so correlated
// sub-streams can be derived from (seed, stream-id) pairs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

namespace malnet::util {

/// SplitMix64 step: used both to whiten seeds and to derive sub-seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a string; used to derive named sub-streams.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

/// PCG32 generator (O'Neill). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }
  result_type operator()();

  /// Derives an independent child generator; `name` labels the sub-stream so
  /// that adding a new consumer never perturbs existing ones.
  [[nodiscard]] Rng fork(std::string_view name);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Geometric distribution: number of failures before first success,
  /// success probability p in (0, 1]. Mean = (1-p)/p.
  [[nodiscard]] std::uint64_t geometric(double p);

  /// Exponential with rate lambda (> 0). Mean = 1/lambda.
  [[nodiscard]] double exponential(double lambda);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty span with a positive total weight.
  [[nodiscard]] std::size_t weighted(std::span<const double> weights);
  [[nodiscard]] std::size_t weighted(std::initializer_list<double> weights);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(uniform(0, v.size() - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[static_cast<std::size_t>(uniform(0, i - 1))]);
    }
  }

  /// Zipf-like heavy-tailed integer in [1, n] with exponent s (s > 0).
  /// Used for "few C2s serve many binaries" style distributions.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace malnet::util
