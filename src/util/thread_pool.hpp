// A fixed-size worker pool for coarse-grained, CPU-bound jobs.
//
// The simulation itself is strictly single-threaded and deterministic; the
// pool exists for the layer *above* it — running many independent
// simulations (seed shards, ablation sweeps) concurrently. Determinism is
// preserved by construction: workers never share mutable state, and callers
// collect results into pre-sized slots indexed by job id, so the merged
// output is independent of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace malnet::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1; pass default_worker_count() to
  /// match the hardware).
  explicit ThreadPool(std::size_t workers);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs must not throw out of the callable; wrap and
  /// capture (parallel_for below does this for you).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished and the queue is empty.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 on exotic platforms).
  [[nodiscard]] static std::size_t default_worker_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when a job is queued / stopping
  std::condition_variable idle_cv_;   // signalled when a job finishes
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(0), fn(1), ..., fn(n-1) on the pool and blocks until all are
/// done. The first exception thrown by any job (in job-index order) is
/// rethrown on the calling thread after every job has finished.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace malnet::util
