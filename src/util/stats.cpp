#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace malnet::util {

Cdf::Cdf(std::span<const double> samples) : data_(samples.begin(), samples.end()) {
  sorted_ = false;
  ensure_sorted();
}

void Cdf::add(double x) {
  data_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Cdf::mean() const {
  if (data_.empty()) return 0.0;
  return std::accumulate(data_.begin(), data_.end(), 0.0) /
         static_cast<double>(data_.size());
}

double Cdf::min() const {
  if (data_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return data_.front();
}

double Cdf::max() const {
  if (data_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return data_.back();
}

double Cdf::at(double x) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(it - data_.begin()) / static_cast<double>(data_.size());
}

double Cdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Cdf::quantile: q out of [0,1]");
  if (data_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  // Clamp in double space: q=0 would otherwise produce -1 before the
  // unsigned cast.
  const double raw = std::ceil(q * static_cast<double>(data_.size())) - 1;
  const double clamped =
      std::clamp(raw, 0.0, static_cast<double>(data_.size() - 1));
  return data_[static_cast<std::size_t>(clamped)];
}

double Cdf::mass_at(double x) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  const auto lo = std::lower_bound(data_.begin(), data_.end(), x);
  const auto hi = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(hi - lo) / static_cast<double>(data_.size());
}

std::vector<std::pair<double, double>> Cdf::steps() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const auto n = static_cast<double>(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i + 1 == data_.size() || data_[i + 1] != data_[i]) {
      out.emplace_back(data_[i], static_cast<double>(i + 1) / n);
    }
  }
  return out;
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::at(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

std::int64_t Histogram::mode() const {
  if (bins_.empty()) return 0;
  auto best = bins_.begin();
  for (auto it = bins_.begin(); it != bins_.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return best->first;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace malnet::util
