// Leveled logging. Off by default so tests and benches stay quiet; examples
// turn it on to narrate the pipeline.
#pragma once

#include <sstream>
#include <string>

namespace malnet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Messages below the threshold are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr: "[level] component: message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style convenience: LOGF(kInfo, "sandbox") << "activated " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream();
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace malnet::util
