// Leveled logging. Off by default so tests and benches stay quiet; examples
// turn it on to narrate the pipeline.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace malnet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Messages below the threshold are dropped.
/// Stored atomically: parallel shard pipelines may read it while the main
/// thread adjusts it (e.g. `malnetctl --log-level`).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (the `--log-level`
/// spellings); std::nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(std::string_view name);

/// Emits one line to stderr: "[level] component: message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style convenience: LOGF(kInfo, "sandbox") << "activated " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream();
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace malnet::util
