#include "util/str.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace malnet::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string format_args(std::string_view fmt, const std::vector<std::string>& args) {
  std::string out;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (i + 1 < fmt.size() && fmt[i] == '{' && fmt[i + 1] == '}') {
      out += arg < args.size() ? args[arg] : std::string("{}");
      ++arg;
      ++i;
    } else {
      out += fmt[i];
    }
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

}  // namespace malnet::util
