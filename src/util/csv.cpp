#include "util/csv.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace malnet::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : width_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(header[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(std::string_view v) {
  if (v.find_first_of(",\"\n\r") == std::string_view::npos) return std::string(v);
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter& CsvWriter::field(std::string_view v) {
  if (in_row_ >= width_) throw std::logic_error("CsvWriter: row too wide");
  if (in_row_) os_ << ',';
  os_ << escape(v);
  ++in_row_;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) { return field(std::to_string(v)); }
CsvWriter& CsvWriter::field(std::int64_t v) { return field(std::to_string(v)); }
CsvWriter& CsvWriter::field(double v, int digits) { return field(fixed(v, digits)); }

void CsvWriter::end_row() {
  if (in_row_ != width_) throw std::logic_error("CsvWriter: row width mismatch");
  os_ << '\n';
  in_row_ = 0;
  ++rows_;
}

std::string CsvWriter::str() const { return os_.str(); }

}  // namespace malnet::util
