// Descriptive statistics used by the report module: empirical CDFs (the
// paper's Figures 2, 3, 5, 6, 7, 13 are all CDFs), means, percentiles and
// integer histograms.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace malnet::util {

/// Empirical cumulative distribution over double samples.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> samples);

  void add(double x);

  /// Number of samples; independent of whether the lazy sort has run.
  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] double mean() const;
  /// Smallest/largest sample. NaN on an empty CDF — degraded/chaos studies
  /// legitimately produce empty datasets, and figure emitters must render
  /// a "no data" row rather than crash.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// P(X <= x). 0 for empty CDFs.
  [[nodiscard]] double at(double x) const;

  /// Smallest sample v such that P(X <= v) >= q. Throws std::invalid_argument
  /// for q outside [0,1]; NaN on an empty CDF (see min()/max()).
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of samples exactly equal to x (useful for "80% have lifespan
  /// of exactly one day" style statements on integer-valued data).
  [[nodiscard]] double mass_at(double x) const;

  /// Renders "value  cumulative%" rows at each distinct sample value —
  /// the exact series a paper CDF figure plots.
  [[nodiscard]] std::vector<std::pair<double, double>> steps() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
};

/// Integer-keyed frequency counter with convenience accessors.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t at(std::int64_t key) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }
  /// Most frequent key (smallest wins ties); 0 on an empty histogram.
  [[nodiscard]] std::int64_t mode() const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Mean of a sample span; 0 for empty input.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Pearson correlation of two equal-length series; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace malnet::util
