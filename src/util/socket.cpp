#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace malnet::util {

namespace {

/// Remaining milliseconds of a deadline (floor 0 once expired).
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// poll() for one event, retrying on EINTR within the deadline. Returns
/// true when the requested event (or an error/hup, which the caller's
/// read/write will surface) is pending.
bool wait_for(int fd, short events, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, remaining_ms(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port, bool* ok) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  *ok = ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags) (void)::fcntl(fd, F_SETFL, want);
}

ListenResult tcp_listen(const std::string& host, std::uint16_t port,
                        int backlog) {
  bool ok = false;
  sockaddr_in addr = make_addr(host, port, &ok);
  if (!ok) throw std::runtime_error("tcp_listen: bad IPv4 address " + host);

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("tcp_listen: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error(std::string("tcp_listen: bind ") + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw std::runtime_error(std::string("tcp_listen: listen: ") +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw std::runtime_error(std::string("tcp_listen: getsockname: ") +
                             std::strerror(errno));
  }
  set_nonblocking(fd.get(), true);
  return {std::move(fd), ntohs(bound.sin_port)};
}

Fd tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  bool ok = false;
  sockaddr_in addr = make_addr(host, port, &ok);
  if (!ok) return {};

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return {};
  set_nonblocking(fd.get(), true);

  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return {};
    if (!wait_for(fd.get(), POLLOUT, timeout_ms)) return {};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return {};
    }
  }
  set_nonblocking(fd.get(), false);
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, BytesView data, int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto n = ::send(fd, data.data() + off, data.size() - off,
                          MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_for(fd, POLLOUT, timeout_ms)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int recv_some(int fd, std::uint8_t* buf, std::size_t n, int timeout_ms) {
  if (!wait_for(fd, POLLIN, timeout_ms)) return -1;
  for (;;) {
    const auto got = ::recv(fd, buf, n, 0);
    if (got >= 0) return static_cast<int>(got);
    if (errno == EINTR) continue;
    return -1;
  }
}

std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return "?";
  }
  char host[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host)) == nullptr) {
    return "?";
  }
  return std::string(host) + ':' + std::to_string(ntohs(addr.sin_port));
}

std::optional<std::pair<std::string, std::uint16_t>> parse_listen_spec(
    std::string_view spec) {
  std::string host = "127.0.0.1";
  std::string_view port_part = spec;
  if (const auto colon = spec.rfind(':'); colon != std::string_view::npos) {
    host = std::string(spec.substr(0, colon));
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty() || port_part.size() > 5) return std::nullopt;
  std::uint32_t port = 0;
  for (const char c : port_part) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (port > 65535) return std::nullopt;
  return std::make_pair(std::move(host), static_cast<std::uint16_t>(port));
}

std::size_t raise_fd_limit(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                          ? want
                          : std::min<rlim_t>(want, lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur == RLIM_INFINITY ? static_cast<std::size_t>(-1)
                                       : static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace malnet::util
