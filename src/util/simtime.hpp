// Simulated time. The whole system runs on a single virtual clock owned by
// the event scheduler; wall-clock time is never consulted. Times are integer
// microseconds since the study epoch (2021-03-29 00:00 UTC, the Monday of
// ISO week 14 of 2021 — week 1 of the paper's Figure 1 mapping, Appendix E).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace malnet::util {

/// A duration in microseconds. Plain value type; arithmetic is exact.
struct Duration {
  std::int64_t us = 0;

  static constexpr Duration micros(std::int64_t n) { return {n}; }
  static constexpr Duration millis(std::int64_t n) { return {n * 1000}; }
  static constexpr Duration seconds(std::int64_t n) { return {n * 1'000'000}; }
  static constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
  static constexpr Duration hours(std::int64_t n) { return minutes(n * 60); }
  static constexpr Duration days(std::int64_t n) { return hours(n * 24); }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us) / 1e6; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return to_hours() / 24.0; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {us + o.us}; }
  constexpr Duration operator-(Duration o) const { return {us - o.us}; }
  constexpr Duration operator*(std::int64_t k) const { return {us * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {us / k}; }
};

/// A point on the simulated timeline.
struct SimTime {
  std::int64_t us = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return {us + d.us}; }
  constexpr SimTime operator-(Duration d) const { return {us - d.us}; }
  constexpr Duration operator-(SimTime o) const { return {us - o.us}; }

  /// Day index since epoch (day 0 = first day of the study).
  [[nodiscard]] constexpr std::int64_t day() const {
    return us / Duration::days(1).us;
  }
  /// Paper-style week number, 1-based (week 1 = first week of the study).
  [[nodiscard]] constexpr std::int64_t week() const { return day() / 7 + 1; }
};

/// Renders a SimTime as "d<day> hh:mm:ss" for logs and reports.
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(Duration d);

/// Calendar label for a study day ("2021-03-29" style). The mapping follows
/// Appendix E: study weeks 1..31 of Figure 1 are non-contiguous calendar
/// weeks; for reporting we expose the underlying contiguous study day.
[[nodiscard]] std::string study_date(std::int64_t day_index);

/// Converts a proleptic-Gregorian civil date into a study-day index
/// (negative for dates before the 2021-03-29 epoch). Used to compute
/// vulnerability ages (§4: "9 of them more than 4 years old").
[[nodiscard]] std::int64_t civil_to_study_day(int year, int month, int day);

}  // namespace malnet::util
