// Byte-buffer utilities: growable buffers with big-endian readers/writers.
//
// All wire formats in this project (IPv4/TCP/UDP headers, DNS, the Mirai C2
// binary protocol, the MBF malware container) are serialized through these
// helpers so endianness handling lives in exactly one place.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace malnet::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown when a reader runs past the end of its buffer or an encoded
/// length field is inconsistent with the data actually present.
class TruncatedInput : public std::runtime_error {
 public:
  explicit TruncatedInput(const std::string& what) : std::runtime_error(what) {}
};

/// Appends integers and blobs to a growable byte vector in network byte
/// order (big-endian). Non-owning view of nothing; owns its buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView data);
  void raw(std::string_view data);
  /// Writes a u16 length prefix followed by the bytes.
  void lp16(BytesView data);
  void lp16(std::string_view data);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Patches a previously written u16 at `offset` (used for length fields
  /// whose value is known only after the payload is written).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  Bytes buf_;
};

/// Sequential big-endian reader over a non-owned byte span. Throws
/// TruncatedInput instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] std::string str(std::size_t n);
  /// Reads a u16 length prefix then that many bytes.
  [[nodiscard]] Bytes lp16();

  void skip(std::size_t n);
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Renders `data` in classic hexdump format (offset, hex, ASCII gutter).
[[nodiscard]] std::string hexdump(BytesView data, std::size_t max_bytes = 256);

/// Hex string ("dead beef" tolerant of spaces) -> bytes. Throws on odd
/// nibble counts or non-hex characters.
[[nodiscard]] Bytes from_hex(std::string_view hex);
[[nodiscard]] std::string to_hex(BytesView data);

[[nodiscard]] Bytes to_bytes(std::string_view s);
[[nodiscard]] std::string to_string(BytesView b);

/// True if `haystack` contains `needle` as a contiguous byte subsequence.
[[nodiscard]] bool contains(BytesView haystack, BytesView needle);
[[nodiscard]] bool contains(BytesView haystack, std::string_view needle);

}  // namespace malnet::util
