// IDS engine: attaches a RuleSet to a host's outbound path (the sandbox
// perimeter) and keeps alert statistics. This is the containment layer of
// §2.6 — e.g. "only C2 traffic is allowed" during the 2-hour DDoS watch is
// expressed as drop rules around a pass rule for the C2 endpoint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ids/rules.hpp"
#include "sim/network.hpp"

namespace malnet::ids {

struct AlertRecord {
  util::SimTime time;
  std::uint32_t sid = 0;
  std::string msg;
  net::Endpoint src;
  net::Endpoint dst;
};

class Engine {
 public:
  explicit Engine(RuleSet rules) : rules_(std::move(rules)) {}

  /// Evaluates one packet: records alerts, returns false if it must drop.
  bool inspect(const net::Packet& p);

  /// Installs this engine as `host`'s outbound filter. The engine must
  /// outlive the host's use of the filter.
  void attach_to(sim::Host& host);

  [[nodiscard]] const std::vector<AlertRecord>& alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t inspected() const { return inspected_; }
  /// Alert counts keyed by sid.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& alert_counts() const {
    return alert_counts_;
  }

  [[nodiscard]] const RuleSet& rules() const { return rules_; }

 private:
  RuleSet rules_;
  std::vector<AlertRecord> alerts_;
  std::map<std::uint32_t, std::uint64_t> alert_counts_;
  std::uint64_t dropped_ = 0;
  std::uint64_t inspected_ = 0;
};

/// The default MalNet containment policy (see §2.6): allows C2-bound
/// traffic to `c2`, DNS, and the fake-victim redirection target; drops and
/// alerts on everything else leaving the sandbox.
[[nodiscard]] RuleSet containment_policy(net::Endpoint c2);

}  // namespace malnet::ids
