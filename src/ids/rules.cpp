#include "ids/rules.hpp"

#include <algorithm>
#include <cctype>

#include "util/str.hpp"

namespace malnet::ids {

std::string to_string(Action a) {
  switch (a) {
    case Action::kAlert: return "alert";
    case Action::kDrop: return "drop";
    case Action::kPass: return "pass";
  }
  return "?";
}

namespace {

bool contains_nocase(util::BytesView haystack, util::BytesView needle) {
  if (needle.empty()) return true;
  const auto lower = [](std::uint8_t b) {
    return static_cast<std::uint8_t>(std::tolower(b));
  };
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                     [&](std::uint8_t a, std::uint8_t b) {
                       return lower(a) == lower(b);
                     }) != haystack.end();
}

std::optional<AddrSpec> parse_addr(std::string_view tok) {
  AddrSpec spec;
  if (tok == "any") return spec;
  spec.any = false;
  if (tok.find('/') != std::string_view::npos) {
    const auto s = net::parse_subnet(tok);
    if (!s) return std::nullopt;
    spec.subnet = *s;
  } else {
    const auto ip = net::parse_ipv4(tok);
    if (!ip) return std::nullopt;
    spec.subnet = net::Subnet{*ip, 32};
  }
  return spec;
}

std::optional<PortSpec> parse_port(std::string_view tok) {
  PortSpec spec;
  if (tok == "any") return spec;
  spec.any = false;
  const auto colon = tok.find(':');
  if (colon == std::string_view::npos) {
    const auto p = util::parse_u64(tok);
    if (!p || *p > 0xFFFF) return std::nullopt;
    spec.lo = spec.hi = static_cast<net::Port>(*p);
  } else {
    const auto lo = util::parse_u64(tok.substr(0, colon));
    const auto hi = util::parse_u64(tok.substr(colon + 1));
    if (!lo || !hi || *lo > 0xFFFF || *hi > 0xFFFF || *lo > *hi) return std::nullopt;
    spec.lo = static_cast<net::Port>(*lo);
    spec.hi = static_cast<net::Port>(*hi);
  }
  return spec;
}

}  // namespace

std::optional<util::Bytes> parse_content(std::string_view pattern) {
  util::Bytes out;
  bool in_hex = false;
  std::string hex_run;
  for (char c : pattern) {
    if (c == '|') {
      if (in_hex) {
        try {
          const auto decoded = util::from_hex(hex_run);
          out.insert(out.end(), decoded.begin(), decoded.end());
        } catch (const std::invalid_argument&) {
          return std::nullopt;
        }
        hex_run.clear();
      }
      in_hex = !in_hex;
    } else if (in_hex) {
      hex_run += c;
    } else {
      out.push_back(static_cast<std::uint8_t>(c));
    }
  }
  if (in_hex) return std::nullopt;  // unterminated |hex|
  return out;
}

bool Rule::matches(const net::Packet& p) const {
  if (proto && *proto != p.proto) return false;
  if (!src.matches(p.src) || !dst.matches(p.dst)) return false;
  if (p.proto != net::Protocol::kIcmp) {
    if (!sport.matches(p.src_port) || !dport.matches(p.dst_port)) return false;
  }
  if (itype && (p.proto != net::Protocol::kIcmp || p.icmp.type != *itype)) {
    return false;
  }
  if (icode && (p.proto != net::Protocol::kIcmp || p.icmp.code != *icode)) {
    return false;
  }
  for (const auto& c : contents) {
    const bool hit = nocase ? contains_nocase(p.payload, c)
                            : util::contains(p.payload, util::BytesView{c});
    if (!hit) return false;
  }
  return true;
}

std::optional<Rule> parse_rule(std::string_view line, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<Rule> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };

  const auto paren = line.find('(');
  const std::string_view head_view = line.substr(0, paren);
  const auto head = util::split_ws(head_view);
  if (head.size() != 7) return fail("expected: action proto src sport -> dst dport");

  Rule rule;
  if (head[0] == "alert") rule.action = Action::kAlert;
  else if (head[0] == "drop") rule.action = Action::kDrop;
  else if (head[0] == "pass") rule.action = Action::kPass;
  else return fail("unknown action: " + head[0]);

  if (head[1] == "tcp") rule.proto = net::Protocol::kTcp;
  else if (head[1] == "udp") rule.proto = net::Protocol::kUdp;
  else if (head[1] == "icmp") rule.proto = net::Protocol::kIcmp;
  else if (head[1] == "ip") rule.proto = std::nullopt;
  else return fail("unknown protocol: " + head[1]);

  if (head[4] != "->") return fail("expected '->'");

  const auto src = parse_addr(head[2]);
  const auto sport = parse_port(head[3]);
  const auto dst = parse_addr(head[5]);
  const auto dport = parse_port(head[6]);
  if (!src) return fail("bad source address: " + head[2]);
  if (!sport) return fail("bad source port: " + head[3]);
  if (!dst) return fail("bad destination address: " + head[5]);
  if (!dport) return fail("bad destination port: " + head[6]);
  rule.src = *src;
  rule.sport = *sport;
  rule.dst = *dst;
  rule.dport = *dport;

  if (paren == std::string_view::npos) return rule;
  const auto close = line.rfind(')');
  if (close == std::string_view::npos || close < paren) return fail("unbalanced '('");
  const std::string_view opts = line.substr(paren + 1, close - paren - 1);

  // Options are semicolon-separated key:value pairs; values may be quoted.
  for (const auto& raw : util::split(std::string(opts), ';')) {
    const auto opt = util::trim(raw);
    if (opt.empty()) continue;
    if (opt == "nocase") {
      rule.nocase = true;
      continue;
    }
    const auto colon = opt.find(':');
    if (colon == std::string_view::npos) return fail("bad option: " + std::string(opt));
    const auto key = util::trim(opt.substr(0, colon));
    auto value = util::trim(opt.substr(colon + 1));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    if (key == "msg") {
      rule.msg = std::string(value);
    } else if (key == "content") {
      auto content = parse_content(value);
      if (!content) return fail("bad content pattern: " + std::string(value));
      rule.contents.push_back(std::move(*content));
    } else if (key == "itype" || key == "icode") {
      const auto v = util::parse_u64(value);
      if (!v || *v > 255) return fail("bad " + std::string(key) + " value");
      if (key == "itype") rule.itype = static_cast<std::uint8_t>(*v);
      else rule.icode = static_cast<std::uint8_t>(*v);
    } else if (key == "sid") {
      const auto sid = util::parse_u64(value);
      if (!sid) return fail("bad sid: " + std::string(value));
      rule.sid = static_cast<std::uint32_t>(*sid);
    } else {
      return fail("unknown option: " + std::string(key));
    }
  }
  return rule;
}

std::optional<RuleSet> RuleSet::parse(std::string_view text, ParseError* error) {
  RuleSet set;
  std::size_t line_no = 0;
  for (const auto& raw : util::split(std::string(text), '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    std::string msg;
    auto rule = parse_rule(line, &msg);
    if (!rule) {
      if (error) *error = ParseError{line_no, std::move(msg)};
      return std::nullopt;
    }
    set.add(std::move(*rule));
  }
  return set;
}

RuleSet::Evaluation RuleSet::evaluate(const net::Packet& p) const {
  Evaluation ev;
  for (const auto& r : rules_) {
    if (!r.matches(p)) continue;
    ev.matched.push_back(&r);
    if (r.action == Action::kPass) return ev;  // explicit pass short-circuits
    if (r.action == Action::kDrop) {
      ev.drop = true;
      return ev;
    }
  }
  return ev;
}

}  // namespace malnet::ids
