#include "ids/engine.hpp"

#include <sstream>

namespace malnet::ids {

bool Engine::inspect(const net::Packet& p) {
  ++inspected_;
  const auto ev = rules_.evaluate(p);
  for (const Rule* r : ev.matched) {
    if (r->action == Action::kAlert || r->action == Action::kDrop) {
      alerts_.push_back(AlertRecord{p.time, r->sid, r->msg, p.source(), p.destination()});
      ++alert_counts_[r->sid];
    }
  }
  if (ev.drop) {
    ++dropped_;
    return false;
  }
  return true;
}

void Engine::attach_to(sim::Host& host) {
  host.set_outbound_filter([this](net::Packet& p) { return inspect(p); });
}

RuleSet containment_policy(net::Endpoint c2) {
  RuleSet set;
  {
    Rule pass_c2;
    pass_c2.action = Action::kPass;
    pass_c2.proto = net::Protocol::kTcp;
    pass_c2.dst = AddrSpec{false, net::Subnet{c2.ip, 32}};
    pass_c2.dport = PortSpec{false, c2.port, c2.port};
    pass_c2.msg = "allow C2 channel";
    pass_c2.sid = 1;
    set.add(std::move(pass_c2));
  }
  {
    Rule pass_dns;
    pass_dns.action = Action::kPass;
    pass_dns.proto = net::Protocol::kUdp;
    pass_dns.dport = PortSpec{false, 53, 53};
    pass_dns.msg = "allow DNS";
    pass_dns.sid = 2;
    set.add(std::move(pass_dns));
  }
  {
    Rule drop_rest;
    drop_rest.action = Action::kDrop;
    drop_rest.msg = "contain non-C2 traffic";
    drop_rest.sid = 100;
    set.add(std::move(drop_rest));
  }
  return set;
}

}  // namespace malnet::ids
