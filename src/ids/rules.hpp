// snort-lite: a SNORT-inspired rule language and matcher.
//
// §2.6: "We use SNORT IDS to detect and prevent malicious traffic from
// leaving our network." This module implements the subset of the rule
// language the containment policy needs:
//
//   action proto src sport -> dst dport (msg:"…"; content:"…"; sid:N;)
//
//   action : alert | drop | pass
//   proto  : tcp | udp | icmp | ip
//   src/dst: any | a.b.c.d | a.b.c.d/len
//   port   : any | N | N:M (inclusive range)
//   options: msg (string), content (text with |hex| escapes, repeatable,
//            all must match), nocase (applies to all contents), sid,
//            itype / icode (ICMP type/code equality)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace malnet::ids {

enum class Action { kAlert, kDrop, kPass };

[[nodiscard]] std::string to_string(Action a);

struct PortSpec {
  bool any = true;
  net::Port lo = 0;
  net::Port hi = 0;

  [[nodiscard]] bool matches(net::Port p) const { return any || (p >= lo && p <= hi); }
};

struct AddrSpec {
  bool any = true;
  net::Subnet subnet{};

  [[nodiscard]] bool matches(net::Ipv4 ip) const { return any || subnet.contains(ip); }
};

struct Rule {
  Action action = Action::kAlert;
  std::optional<net::Protocol> proto;  // nullopt = "ip" (any protocol)
  AddrSpec src;
  PortSpec sport;
  AddrSpec dst;
  PortSpec dport;
  std::string msg;
  std::vector<util::Bytes> contents;  // all must be present in the payload
  bool nocase = false;
  std::optional<std::uint8_t> itype;  // ICMP type filter
  std::optional<std::uint8_t> icode;  // ICMP code filter
  std::uint32_t sid = 0;

  [[nodiscard]] bool matches(const net::Packet& p) const;
};

/// Parse failure describes the offending line.
struct ParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parses a rule file (one rule per line; '#' comments and blank lines are
/// skipped). Returns rules or the first error.
class RuleSet {
 public:
  static std::optional<RuleSet> parse(std::string_view text, ParseError* error = nullptr);

  void add(Rule r) { rules_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// First-match verdict semantics: rules are evaluated in order; the first
  /// matching pass/drop rule decides. alert rules record but do not decide.
  /// Returns all matching rules (for alert accounting) plus the verdict.
  struct Evaluation {
    bool drop = false;
    std::vector<const Rule*> matched;
  };
  [[nodiscard]] Evaluation evaluate(const net::Packet& p) const;

 private:
  std::vector<Rule> rules_;
};

/// Parses one rule line (without comments). Exposed for tests.
[[nodiscard]] std::optional<Rule> parse_rule(std::string_view line,
                                             std::string* error = nullptr);

/// Parses a content pattern with |hex| escapes: `abc|0d 0a|def`.
[[nodiscard]] std::optional<util::Bytes> parse_content(std::string_view pattern);

}  // namespace malnet::ids
