// Threat-intelligence feed simulation (the VirusTotal vendor aggregate of
// §3.3 / Appendix D).
//
// 89 vendor feeds; 44 ever flag an IoT C2, 45 never do. Detection is
// modelled in two stages, which is what produces the paper's findings:
//
//  1. A per-C2 *exposure* event: until some vendor first learns of the
//     address, nobody flags it. Exposure lag is exponential (longer for
//     DNS-named C2s), and a fraction of addresses are never exposed at all
//     — this drives Table 3's same-day miss rates (15.3% all / 13.3% IP /
//     57.6% DNS) and the residual misses on the May 7 re-query.
//
//  2. Per-vendor propagation after exposure: each vendor has an eventual
//     coverage (Table 7's per-vendor counts) and its own sharing lag —
//     which is why a C2 known to *someone* is typically flagged by only a
//     handful of feeds on the day it matters (Figure 7).
//
// Everything is a pure deterministic function of (seed, address, vendor),
// so queries are stable and order-independent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace malnet::intel {

struct Vendor {
  std::string name;
  double coverage = 0.0;       // P(eventually lists a given exposed C2)
  double mean_extra_lag = 3.0; // days from exposure to this vendor listing
};

/// The 89-vendor population (44 detecting + 45 inert), headed by the
/// Table 7 top-20.
[[nodiscard]] const std::vector<Vendor>& vendor_population();

struct TiModel {
  double ip_never_listed = 0.015;   // Table 3 "May 7th" residual (IP)
  double dns_never_listed = 0.24;   // Table 3 "May 7th" residual (DNS)
  // Fast path: most C2s are picked up almost immediately (the same feeds
  // that surface the binaries see the infrastructure).
  double ip_exposure_mean_days = 0.25;
  double dns_exposure_mean_days = 0.5;
  // Slow path: a fraction is only discovered much later — these are the
  // same-day misses that the May 7 re-query eventually confirms.
  double ip_slow_fraction = 0.05;
  double dns_slow_fraction = 0.30;
  double slow_offset_days = 5.0;
  double slow_mean_days = 12.0;
  /// How long the C2 had already been operating before the first binary
  /// referencing it surfaced in our feeds (shifts exposure earlier).
  double prior_activity_mean_days = 3.5;
};

class ThreatIntel {
 public:
  explicit ThreatIntel(std::uint64_t seed, TiModel model = {});

  /// Registers a C2 address with the day it first became active. The feed
  /// ecosystem can only ever learn about registered addresses. Idempotent
  /// (first registration wins).
  void register_c2(const std::string& address, std::int64_t first_active_day,
                   bool is_dns);

  /// #vendors listing `address` as malicious when queried on `day`.
  /// Unregistered addresses are clean (0).
  [[nodiscard]] int vendors_flagging(const std::string& address,
                                     std::int64_t day) const;
  [[nodiscard]] bool is_malicious(const std::string& address, std::int64_t day) const {
    return vendors_flagging(address, day) > 0;
  }

  /// Whether one specific vendor lists the address on `day`.
  [[nodiscard]] bool vendor_flags(std::size_t vendor_idx, const std::string& address,
                                  std::int64_t day) const;

  /// Per-vendor counts over an address set at query day (Table 7 shape).
  [[nodiscard]] std::vector<std::pair<std::string, int>> vendor_counts(
      std::span<const std::string> addresses, std::int64_t day) const;

  [[nodiscard]] std::size_t registered() const { return c2s_.size(); }

 private:
  struct C2State {
    std::int64_t first_active_day = 0;
    bool is_dns = false;
    std::optional<double> exposure_day;  // nullopt: never listed by anyone
  };

  [[nodiscard]] const C2State* find(const std::string& address) const;

  std::uint64_t seed_;
  TiModel model_;
  std::map<std::string, C2State> c2s_;
};

}  // namespace malnet::intel
