#include "intel/threat_intel.hpp"

#include "util/rng.hpp"

namespace malnet::intel {

const std::vector<Vendor>& vendor_population() {
  static const std::vector<Vendor> kVendors = [] {
    std::vector<Vendor> v;
    // Table 7's top vendors: eventual coverage tuned so their counts over
    // 1000 C2 IPs land near the paper's 799..324 after the late re-query.
    const auto add = [&v](std::string name, double cov, double lag) {
      v.push_back(Vendor{std::move(name), cov, lag});
    };
    add("0xSI_f33d", 0.83, 10.1);
    add("SafeToOpen", 0.83, 12.8);
    add("AutoShun", 0.83, 15.3);
    add("Lumu", 0.83, 12.8);
    add("Cyan", 0.83, 20.4);
    add("Kaspersky", 0.82, 7.6);
    add("PhishLabs", 0.82, 15.3);
    add("StopBadware", 0.82, 20.4);
    add("NotMining", 0.82, 22.9);
    add("Netcraft", 0.77, 12.8);
    add("Forcepoint ThreatSeeker", 0.77, 17.8);
    add("CRDF", 0.75, 20.4);
    add("Comodo Valkyrie Verdict", 0.72, 20.4);
    add("Fortinet", 0.70, 10.1);
    add("Webroot", 0.70, 12.8);
    add("CMC Threat Intelligence", 0.60, 25.4);
    add("Avira", 0.59, 20.4);
    add("CyRadar", 0.40, 30.5);
    add("G-Data", 0.33, 25.4);
    // The remaining 25 detecting feeds: sparse, slow contributors.
    for (int i = 0; i < 25; ++i) {
      add("feed-" + std::to_string(i), 0.04 + 0.012 * i, 14.0 + (i % 14));
    }
    // 45 vendors that never flag an IoT C2 (Appendix D).
    for (int i = 0; i < 45; ++i) {
      add("inert-" + std::to_string(i), 0.0, 30.0);
    }
    return v;
  }();
  return kVendors;
}

ThreatIntel::ThreatIntel(std::uint64_t seed, TiModel model)
    : seed_(seed), model_(model) {}

void ThreatIntel::register_c2(const std::string& address, std::int64_t first_active_day,
                              bool is_dns) {
  if (c2s_.count(address) > 0) return;
  C2State st;
  st.first_active_day = first_active_day;
  st.is_dns = is_dns;

  util::Rng rng(seed_ ^ util::fnv1a64(address), util::fnv1a64("exposure"));
  const double never = is_dns ? model_.dns_never_listed : model_.ip_never_listed;
  if (!rng.chance(never)) {
    const double slow_q = is_dns ? model_.dns_slow_fraction : model_.ip_slow_fraction;
    double lag;
    if (rng.chance(slow_q)) {
      lag = model_.slow_offset_days + rng.exponential(1.0 / model_.slow_mean_days);
    } else {
      const double mean =
          is_dns ? model_.dns_exposure_mean_days : model_.ip_exposure_mean_days;
      lag = rng.exponential(1.0 / mean);
    }
    // C2 infrastructure is typically active (and reportable) before the
    // first binary referencing it reaches our feeds; fast-path exposure may
    // therefore precede first_active_day.
    lag -= rng.exponential(1.0 / model_.prior_activity_mean_days);
    st.exposure_day = static_cast<double>(first_active_day) + lag;
  }
  c2s_.emplace(address, st);
}

const ThreatIntel::C2State* ThreatIntel::find(const std::string& address) const {
  const auto it = c2s_.find(address);
  return it == c2s_.end() ? nullptr : &it->second;
}

bool ThreatIntel::vendor_flags(std::size_t vendor_idx, const std::string& address,
                               std::int64_t day) const {
  const C2State* st = find(address);
  if (st == nullptr || !st->exposure_day) return false;
  const auto& vendors = vendor_population();
  if (vendor_idx >= vendors.size()) return false;
  const Vendor& v = vendors[vendor_idx];
  if (v.coverage <= 0.0) return false;

  util::Rng rng(seed_ ^ util::fnv1a64(address), util::fnv1a64(v.name));
  if (!rng.chance(v.coverage)) return false;
  const double listed_at = *st->exposure_day + rng.exponential(1.0 / v.mean_extra_lag);
  // End-of-day query semantics: a binary published on `day` is analysed
  // during that day, so anything listed within the day counts.
  return static_cast<double>(day) + 0.99 >= listed_at;
}

int ThreatIntel::vendors_flagging(const std::string& address, std::int64_t day) const {
  const C2State* st = find(address);
  if (st == nullptr || !st->exposure_day ||
      static_cast<double>(day) + 0.99 < *st->exposure_day) {
    return 0;
  }
  int count = 0;
  const auto& vendors = vendor_population();
  for (std::size_t i = 0; i < vendors.size(); ++i) {
    if (vendor_flags(i, address, day)) ++count;
  }
  return count;
}

std::vector<std::pair<std::string, int>> ThreatIntel::vendor_counts(
    std::span<const std::string> addresses, std::int64_t day) const {
  const auto& vendors = vendor_population();
  std::vector<std::pair<std::string, int>> out;
  out.reserve(vendors.size());
  for (std::size_t i = 0; i < vendors.size(); ++i) {
    int count = 0;
    for (const auto& addr : addresses) {
      if (vendor_flags(i, addr, day)) ++count;
    }
    out.emplace_back(vendors[i].name, count);
  }
  return out;
}

}  // namespace malnet::intel
