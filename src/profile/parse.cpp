#include "profile/parse.hpp"

#include <cmath>
#include <stdexcept>

#include "util/str.hpp"

namespace malnet::profile {

std::string ParseIssue::render() const {
  if (line > 0) {
    return "line " + std::to_string(line) + ", column " + std::to_string(column) +
           ": " + message;
  }
  if (!field.empty()) return "field '" + field + "': " + message;
  return message;
}

namespace {

using obs::json::Value;

/// Schema violations unwind to parse_profile, which turns them into a
/// ParseIssue. Internal to this translation unit.
struct SchemaError {
  std::string field;
  std::string message;
};

std::string joined(const std::string& path, const char* key) {
  return path.empty() ? key : path + "." + key;
}

const Value* find(const Value& obj, const char* key) { return obj.find(key); }

const Value& require(const Value& obj, const std::string& path, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr) throw SchemaError{joined(path, key), "missing"};
  return *v;
}

std::string require_string(const Value& obj, const std::string& path,
                           const char* key) {
  const Value& v = require(obj, path, key);
  if (!v.is_string()) throw SchemaError{joined(path, key), "must be a string"};
  return v.str;
}

std::uint32_t require_u32(const Value& obj, const std::string& path,
                          const char* key) {
  const Value& v = require(obj, path, key);
  if (!v.is_number() || v.number < 0 || v.number > 4294967295.0 ||
      v.number != std::floor(v.number)) {
    throw SchemaError{joined(path, key), "must be an unsigned integer"};
  }
  return static_cast<std::uint32_t>(v.number);
}

void require_object(const Value& v, const std::string& path) {
  if (!v.is_object()) throw SchemaError{path, "must be an object"};
}

/// Strict schema: a key the grammar does not define is an error, so typos
/// fail loudly instead of silently falling back to defaults.
void reject_unknown_keys(const Value& obj, const std::string& path,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, member] : obj.object) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) throw SchemaError{joined(path, key.c_str()), "unknown key"};
  }
}

util::Bytes require_hex(const Value& obj, const std::string& path,
                        const char* key) {
  const std::string text = require_string(obj, path, key);
  try {
    return util::from_hex(text);
  } catch (const std::invalid_argument&) {
    throw SchemaError{joined(path, key), "must be an even-length hex string"};
  }
}

FamilyProfile from_json(const Value& root) {
  require_object(root, "");
  reject_unknown_keys(root, "",
                      {"family", "name", "marker", "framing", "topology",
                       "binary", "text", "irc", "tls", "commands", "beacon",
                       "plan", "fallback"});

  FamilyProfile p;
  const std::string fam = require_string(root, "", "family");
  const auto id = proto::family_from_string(fam);
  if (!id) throw SchemaError{"family", "unknown family '" + fam + "'"};
  p.id = *id;
  p.name = proto::to_string(p.id);
  if (const Value* v = find(root, "name")) {
    if (!v->is_string()) throw SchemaError{"name", "must be a string"};
    p.name = v->str;
  }
  p.marker = require_string(root, "", "marker");

  const std::string framing = require_string(root, "", "framing");
  const auto fr = framing_from_string(framing);
  if (!fr) throw SchemaError{"framing", "unknown framing '" + framing + "'"};
  p.framing = *fr;

  const std::string topology = require_string(root, "", "topology");
  const auto topo = topology_from_string(topology);
  if (!topo) throw SchemaError{"topology", "unknown topology '" + topology + "'"};
  p.topology = *topo;

  // Exactly the section matching `framing` may be present: a profile that
  // carries (say) both "binary" and "text" sections is ambiguous about how
  // the C2 dialogue is framed, and is rejected outright.
  struct Section {
    const char* key;
    Framing framing;
  };
  static constexpr Section kSections[] = {
      {"binary", Framing::kBinary},
      {"text", Framing::kText},
      {"irc", Framing::kIrc},
      {"tls", Framing::kTlsBeacon},
  };
  for (const auto& s : kSections) {
    const bool present = find(root, s.key) != nullptr;
    const bool expected = p.framing == s.framing;
    if (present && !expected) {
      throw SchemaError{s.key, "ambiguous framing: profile declares framing '" +
                                   to_string(p.framing) + "'"};
    }
    if (!present && expected) {
      throw SchemaError{s.key, "missing section for framing '" +
                                   to_string(p.framing) + "'"};
    }
  }

  switch (p.framing) {
    case Framing::kBinary: {
      const Value& b = *find(root, "binary");
      require_object(b, "binary");
      reject_unknown_keys(b, "binary", {"handshake_magic"});
      p.handshake_magic = require_u32(b, "binary", "handshake_magic");
      break;
    }
    case Framing::kText: {
      const Value& t = *find(root, "text");
      require_object(t, "text");
      reject_unknown_keys(t, "text",
                          {"hello", "hello_arg", "hello_sends", "ping", "pong",
                           "attack_prefix"});
      const Value& hello = require(t, "text", "hello");
      if (!hello.is_array()) throw SchemaError{"text.hello", "must be an array"};
      p.hello_words.clear();
      for (const Value& w : hello.array) {
        if (!w.is_string()) {
          throw SchemaError{"text.hello", "must be an array of strings"};
        }
        p.hello_words.push_back(w.str);
      }
      const std::string arg = require_string(t, "text", "hello_arg");
      if (arg == "rest") {
        p.hello_takes_rest = true;
      } else if (arg == "token") {
        p.hello_takes_rest = false;
      } else {
        throw SchemaError{"text.hello_arg", "must be 'rest' or 'token'"};
      }
      const std::string sends = require_string(t, "text", "hello_sends");
      if (sends == "arch") {
        p.hello_sends_bot_id = false;
      } else if (sends == "bot-id") {
        p.hello_sends_bot_id = true;
      } else {
        throw SchemaError{"text.hello_sends", "must be 'arch' or 'bot-id'"};
      }
      p.ping_word = require_string(t, "text", "ping");
      p.pong_word = require_string(t, "text", "pong");
      p.attack_prefix = require_string(t, "text", "attack_prefix");
      break;
    }
    case Framing::kIrc: {
      const Value& c = *find(root, "irc");
      require_object(c, "irc");
      reject_unknown_keys(c, "irc", {"channel", "attack_prefix"});
      p.irc_channel = require_string(c, "irc", "channel");
      p.attack_prefix = require_string(c, "irc", "attack_prefix");
      break;
    }
    case Framing::kTlsBeacon: {
      const Value& t = *find(root, "tls");
      require_object(t, "tls");
      reject_unknown_keys(t, "tls",
                          {"client_hello", "server_hello", "beacon", "peer_id"});
      p.tls_client_hello = require_hex(t, "tls", "client_hello");
      p.tls_server_hello = require_hex(t, "tls", "server_hello");
      p.tls_beacon = require_hex(t, "tls", "beacon");
      p.tls_peer_id = require_string(t, "tls", "peer_id");
      break;
    }
    case Framing::kP2p: break;
  }

  if (const Value* cmds = find(root, "commands")) {
    if (!cmds->is_array()) throw SchemaError{"commands", "must be an array"};
    for (std::size_t i = 0; i < cmds->array.size(); ++i) {
      const std::string at = "commands[" + std::to_string(i) + "]";
      const Value& entry = cmds->array[i];
      require_object(entry, at);
      if (p.is_text_like()) {
        reject_unknown_keys(entry, at, {"type", "keyword"});
      } else {
        reject_unknown_keys(entry, at, {"type", "vector"});
      }
      Command c;
      const std::string type = require_string(entry, at, "type");
      const auto t = attack_type_from_string(type);
      if (!t) throw SchemaError{at + ".type", "unknown attack type '" + type + "'"};
      c.type = *t;
      if (p.is_text_like()) {
        c.keyword = require_string(entry, at, "keyword");
      } else {
        const std::uint32_t vec = require_u32(entry, at, "vector");
        if (vec > 255) throw SchemaError{at + ".vector", "must fit in a byte"};
        c.vector = static_cast<std::uint8_t>(vec);
      }
      p.commands.push_back(std::move(c));
    }
  }

  if (const Value* beacon = find(root, "beacon")) {
    require_object(*beacon, "beacon");
    reject_unknown_keys(*beacon, "beacon",
                        {"keepalive_min_s", "keepalive_max_s"});
    p.keepalive_min_s = require_u32(*beacon, "beacon", "keepalive_min_s");
    p.keepalive_max_s = require_u32(*beacon, "beacon", "keepalive_max_s");
  }

  if (const Value* plan = find(root, "plan")) {
    require_object(*plan, "plan");
    reject_unknown_keys(*plan, "plan", {"attacker_quota"});
    const std::uint32_t quota = require_u32(*plan, "plan", "attacker_quota");
    if (quota > 1000) throw SchemaError{"plan.attacker_quota", "implausibly large"};
    p.attacker_quota = static_cast<int>(quota);
  }

  if (const Value* fb = find(root, "fallback")) {
    require_object(*fb, "fallback");
    reject_unknown_keys(*fb, "fallback", {"extra"});
    const std::uint32_t extra = require_u32(*fb, "fallback", "extra");
    if (extra > 16) throw SchemaError{"fallback.extra", "implausibly large"};
    p.extra_fallbacks = static_cast<int>(extra);
  }
  return p;
}

}  // namespace

std::optional<FamilyProfile> parse_profile(std::string_view text,
                                           ParseIssue* issue) {
  std::size_t offset = 0;
  const auto doc = obs::json::parse(text, &offset);
  if (!doc) {
    if (issue != nullptr) {
      issue->message = "JSON syntax error";
      issue->line = 1;
      issue->column = 1;
      for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
        if (text[i] == '\n') {
          ++issue->line;
          issue->column = 1;
        } else {
          ++issue->column;
        }
      }
      issue->field.clear();
    }
    return std::nullopt;
  }
  try {
    FamilyProfile p = from_json(*doc);
    if (const auto err = p.validate()) {
      // validate() prefixes the offending field path ("text.ping: ...").
      const std::size_t colon = err->find(": ");
      if (issue != nullptr) {
        issue->line = issue->column = 0;
        if (colon != std::string::npos) {
          issue->field = err->substr(0, colon);
          issue->message = err->substr(colon + 2);
        } else {
          issue->field.clear();
          issue->message = *err;
        }
      }
      return std::nullopt;
    }
    return p;
  } catch (const SchemaError& e) {
    if (issue != nullptr) {
      issue->message = e.message;
      issue->line = issue->column = 0;
      issue->field = e.field;
    }
    return std::nullopt;
  }
}

}  // namespace malnet::profile
