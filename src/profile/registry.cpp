#include "profile/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "profile/parse.hpp"
#include "util/rng.hpp"

namespace malnet::profile {

Registry::Registry() {
  for (int i = 0; i < proto::kFamilyCount; ++i) {
    FamilyProfile p = builtin_profile(static_cast<proto::Family>(i));
    std::string key = p.name;
    profiles_.emplace(std::move(key), std::move(p));
  }
}

const Registry& Registry::builtin() {
  static const Registry instance;
  return instance;
}

std::optional<std::string> Registry::load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return path + ": cannot open";
  const std::string text((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
  ParseIssue issue;
  auto p = parse_profile(text, &issue);
  if (!p) return path + ": " + issue.render();
  // operator[] assigns in place on overwrite, so pointers handed out by
  // active()/by_name() stay valid (and now see the new content).
  profiles_[p->name] = std::move(*p);
  return std::nullopt;
}

std::optional<std::string> Registry::load_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return dir + ": not a directory";
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  }
  if (ec) return dir + ": " + ec.message();
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    if (auto err = load_file(path)) return err;
  }
  return std::nullopt;
}

const FamilyProfile* Registry::active(proto::Family f) const {
  const auto it = profiles_.find(proto::to_string(f));
  return it == profiles_.end() ? nullptr : &it->second;
}

const FamilyProfile* Registry::by_name(const std::string& name) const {
  const auto it = profiles_.find(name);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::vector<const FamilyProfile*> Registry::all() const {
  std::vector<const FamilyProfile*> out;
  out.reserve(profiles_.size());
  for (const auto& [name, p] : profiles_) out.push_back(&p);
  return out;
}

std::uint64_t Registry::set_hash() const {
  std::string blob;
  for (const auto& [name, p] : profiles_) {
    blob += name;
    blob += '\0';
    blob += obs::json::write(p.to_json());
    blob += '\n';
  }
  return util::fnv1a64(blob);
}

}  // namespace malnet::profile
