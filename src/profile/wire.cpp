#include "profile/wire.hpp"

#include <stdexcept>

#include "net/ipv4.hpp"
#include "proto/mirai.hpp"
#include "util/str.hpp"

namespace malnet::profile::wire {

util::Bytes encode_handshake(const FamilyProfile& p, const std::string& bot_id) {
  if (bot_id.size() > 255) {
    throw std::invalid_argument("profile: bot id too long");
  }
  util::ByteWriter w;
  w.u32(p.handshake_magic);
  w.u8(static_cast<std::uint8_t>(bot_id.size()));
  w.raw(bot_id);
  return w.take();
}

std::optional<Handshake> decode_handshake(const FamilyProfile& p,
                                          util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    if (r.u32() != p.handshake_magic) return std::nullopt;
    const std::uint8_t len = r.u8();
    Handshake h;
    h.bot_id = r.str(len);
    if (!r.done()) return std::nullopt;
    return h;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes encode_keepalive() { return util::Bytes{0x00, 0x00}; }

bool is_keepalive(util::BytesView wire) {
  return wire.size() == 2 && wire[0] == 0 && wire[1] == 0;
}

util::Bytes encode_binary_attack(const FamilyProfile& p,
                                 const proto::AttackCommand& cmd) {
  const Command* c = p.by_type(cmd.type);
  if (c == nullptr) {
    throw std::invalid_argument("profile '" + p.name +
                                "' does not implement " +
                                proto::to_string(cmd.type));
  }
  util::ByteWriter body;
  body.u32(cmd.duration_s);
  body.u8(c->vector);
  body.u8(1);  // one target
  body.u32(cmd.target.ip.value);
  body.u8(32);  // /32 target
  if (cmd.target.port != 0) {
    body.u8(1);  // one option
    body.u8(proto::mirai::kOptDport);
    body.u8(2);
    body.u16(cmd.target.port);
  } else {
    body.u8(0);
  }
  util::ByteWriter framed;
  framed.lp16(body.bytes());
  return framed.take();
}

std::optional<proto::AttackCommand> decode_binary_attack(const FamilyProfile& p,
                                                         util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    const util::Bytes body = r.lp16();
    if (body.empty() || !r.done()) return std::nullopt;
    util::ByteReader b(body);
    proto::AttackCommand cmd;
    cmd.family = p.id;
    cmd.duration_s = b.u32();
    const Command* c = p.by_vector(b.u8());
    if (c == nullptr) return std::nullopt;
    cmd.type = c->type;
    const std::uint8_t n_targets = b.u8();
    if (n_targets == 0) return std::nullopt;
    cmd.target.ip = net::Ipv4{b.u32()};
    b.skip(1);  // prefix
    for (std::uint8_t i = 1; i < n_targets; ++i) b.skip(5);  // extra targets
    const std::uint8_t n_opts = b.u8();
    for (std::uint8_t i = 0; i < n_opts; ++i) {
      const std::uint8_t key = b.u8();
      const std::uint8_t len = b.u8();
      const util::Bytes val = b.raw(len);
      if (key == proto::mirai::kOptDport && len == 2) {
        cmd.target.port = static_cast<net::Port>((val[0] << 8) | val[1]);
      }
    }
    if (!b.done()) return std::nullopt;
    cmd.raw.assign(wire.begin(), wire.end());
    return cmd;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

namespace {

std::string hello_prefix(const FamilyProfile& p) {
  return util::join(p.hello_words, " ");
}

}  // namespace

std::string encode_hello(const FamilyProfile& p, const std::string& arg) {
  return hello_prefix(p) + " " + arg + "\n";
}

std::optional<std::string> decode_hello(const FamilyProfile& p,
                                        std::string_view line) {
  const auto trimmed = util::trim(line);
  if (p.hello_takes_rest) {
    // Gafgyt grammar: fixed prefix, the trimmed rest is the argument.
    const std::string prefix = hello_prefix(p) + " ";
    if (trimmed.rfind(prefix, 0) != 0) return std::nullopt;
    return std::string(util::trim(trimmed.substr(prefix.size())));
  }
  // Daddyl33t grammar: exact tokens, one trailing argument token.
  const auto parts = util::split_ws(trimmed);
  if (parts.size() != p.hello_words.size() + 1) return std::nullopt;
  for (std::size_t i = 0; i < p.hello_words.size(); ++i) {
    if (parts[i] != p.hello_words[i]) return std::nullopt;
  }
  return parts.back();
}

std::string encode_ping(const FamilyProfile& p) { return p.ping_word + "\n"; }
std::string encode_pong(const FamilyProfile& p) { return p.pong_word + "\n"; }

bool is_ping(const FamilyProfile& p, std::string_view line) {
  return util::trim(line) == p.ping_word;
}

bool is_pong(const FamilyProfile& p, std::string_view line) {
  return util::trim(line) == p.pong_word;
}

std::string encode_text_attack(const FamilyProfile& p,
                               const proto::AttackCommand& cmd) {
  const Command* c = p.by_type(cmd.type);
  if (c == nullptr) {
    throw std::invalid_argument("profile '" + p.name +
                                "' does not implement " +
                                proto::to_string(cmd.type));
  }
  std::string line;
  if (!p.attack_prefix.empty()) line = p.attack_prefix + " ";
  line += c->keyword + " " + net::to_string(cmd.target.ip) + " " +
          std::to_string(cmd.target.port) + " " +
          std::to_string(cmd.duration_s) + "\n";
  return line;
}

std::optional<proto::AttackCommand> decode_text_attack(const FamilyProfile& p,
                                                       std::string_view line) {
  const auto parts = util::split_ws(util::trim(line));
  const std::size_t base = p.attack_prefix.empty() ? 0 : 1;
  if (parts.size() != base + 4) return std::nullopt;
  if (base == 1 && parts[0] != p.attack_prefix) return std::nullopt;
  const Command* c = p.by_keyword(parts[base]);
  const auto ip = net::parse_ipv4(parts[base + 1]);
  const auto port = util::parse_u64(parts[base + 2]);
  const auto secs = util::parse_u64(parts[base + 3]);
  if (c == nullptr || !ip || !port || *port > 0xFFFF || !secs) {
    return std::nullopt;
  }
  proto::AttackCommand cmd;
  cmd.family = p.id;
  cmd.type = c->type;
  cmd.target = {*ip, static_cast<net::Port>(*port)};
  cmd.duration_s = static_cast<std::uint32_t>(*secs);
  cmd.raw = util::to_bytes(line);
  return cmd;
}

}  // namespace malnet::profile::wire
