#include "profile/profile.hpp"

#include <algorithm>

#include "mal/binary.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

namespace malnet::profile {

std::string to_string(Framing f) {
  switch (f) {
    case Framing::kBinary: return "binary";
    case Framing::kText: return "text";
    case Framing::kIrc: return "irc";
    case Framing::kTlsBeacon: return "tls-beacon";
    case Framing::kP2p: return "p2p";
  }
  return "?";
}

std::optional<Framing> framing_from_string(std::string_view s) {
  for (const Framing f : {Framing::kBinary, Framing::kText, Framing::kIrc,
                          Framing::kTlsBeacon, Framing::kP2p}) {
    if (s == to_string(f)) return f;
  }
  return std::nullopt;
}

std::string to_string(Topology t) {
  switch (t) {
    case Topology::kSingle: return "single";
    case Topology::kFallback: return "fallback";
    case Topology::kP2p: return "p2p";
  }
  return "?";
}

std::optional<Topology> topology_from_string(std::string_view s) {
  for (const Topology t : {Topology::kSingle, Topology::kFallback,
                           Topology::kP2p}) {
    if (s == to_string(t)) return t;
  }
  return std::nullopt;
}

std::optional<proto::AttackType> attack_type_from_string(std::string_view s) {
  for (int i = 0; i < proto::kAttackTypeCount; ++i) {
    const auto t = static_cast<proto::AttackType>(i);
    if (util::iequals(s, proto::to_string(t))) return t;
  }
  return std::nullopt;
}

const Command* FamilyProfile::by_type(proto::AttackType t) const {
  for (const auto& c : commands) {
    if (c.type == t) return &c;
  }
  return nullptr;
}

const Command* FamilyProfile::by_vector(std::uint8_t v) const {
  for (const auto& c : commands) {
    if (c.vector == v) return &c;
  }
  return nullptr;
}

const Command* FamilyProfile::by_keyword(std::string_view kw) const {
  for (const auto& c : commands) {
    if (util::iequals(c.keyword, kw)) return &c;
  }
  return nullptr;
}

std::vector<proto::AttackType> FamilyProfile::command_types() const {
  std::vector<proto::AttackType> out;
  out.reserve(commands.size());
  for (const auto& c : commands) out.push_back(c.type);
  return out;
}

namespace {

bool has_ws(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  });
}

bool bad_word(std::string_view s) { return s.empty() || has_ws(s); }

}  // namespace

std::optional<std::string> FamilyProfile::validate() const {
  const auto fam_idx = static_cast<int>(id);
  if (fam_idx < 0 || fam_idx >= proto::kFamilyCount) {
    return "family: unknown family id";
  }
  if (bad_word(name)) return "name: must be a non-empty word";
  if (marker.empty()) return "marker: must be non-empty";

  // Framing / topology cross-references. A P2P overlay has no C2 dialogue,
  // so the three properties must agree (and match the family's compiled-in
  // P2P-ness, which the sample planner still keys off).
  const bool p2p_framing = framing == Framing::kP2p;
  const bool p2p_topology = topology == Topology::kP2p;
  if (p2p_framing != p2p_topology) {
    return "topology: p2p framing and p2p topology imply each other";
  }
  if (p2p_framing != proto::is_p2p(id)) {
    return "framing: p2p-ness must match family '" +
           proto::to_string(id) + "'";
  }

  switch (framing) {
    case Framing::kBinary:
      if (handshake_magic == 0) return "binary.handshake_magic: must be non-zero";
      break;
    case Framing::kText: {
      if (hello_words.empty()) return "text.hello: must list at least one word";
      for (const auto& w : hello_words) {
        if (bad_word(w)) return "text.hello: words must be non-empty, no spaces";
      }
      if (bad_word(ping_word)) return "text.ping: must be a non-empty word";
      if (bad_word(pong_word)) return "text.pong: must be a non-empty word";
      if (util::iequals(ping_word, pong_word)) {
        return "text.pong: must differ from text.ping";
      }
      // An attack line must not be mistakable for a hello or a ping: the
      // server dispatches on the first token.
      if (util::iequals(hello_words.front(), ping_word) ||
          util::iequals(hello_words.front(), pong_word)) {
        return "text.hello: first word collides with ping/pong";
      }
      if (!attack_prefix.empty()) {
        if (has_ws(attack_prefix)) return "text.attack_prefix: no spaces";
        if (util::iequals(attack_prefix, ping_word) ||
            util::iequals(attack_prefix, pong_word)) {
          return "text.attack_prefix: collides with ping/pong";
        }
        if (util::iequals(attack_prefix, hello_words.front())) {
          return "text.attack_prefix: collides with hello";
        }
      }
      break;
    }
    case Framing::kIrc:
      if (bad_word(irc_channel) || irc_channel.front() != '#') {
        return "irc.channel: must be a single '#'-prefixed word";
      }
      if (has_ws(attack_prefix)) return "irc.attack_prefix: no spaces";
      break;
    case Framing::kTlsBeacon:
      if (tls_client_hello.empty()) return "tls.client_hello: must be non-empty";
      if (tls_server_hello.empty()) return "tls.server_hello: must be non-empty";
      if (tls_beacon.empty()) return "tls.beacon: must be non-empty";
      if (tls_peer_id.empty()) return "tls.peer_id: must be non-empty";
      if (!commands.empty()) {
        return "commands: tls-beacon framing has no attack encoding";
      }
      break;
    case Framing::kP2p:
      if (!commands.empty()) return "commands: p2p families take no C2 commands";
      break;
  }

  const bool keyword_framing = is_text_like();
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const auto& c = commands[i];
    const std::string at = "commands[" + std::to_string(i) + "]";
    const auto type_idx = static_cast<int>(c.type);
    if (type_idx < 0 || type_idx >= proto::kAttackTypeCount) {
      return at + ".type: unknown attack type";
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (commands[j].type == c.type) return at + ".type: duplicate";
    }
    if (keyword_framing) {
      if (bad_word(c.keyword)) return at + ".keyword: must be a non-empty word";
      for (std::size_t j = 0; j < i; ++j) {
        if (util::iequals(commands[j].keyword, c.keyword)) {
          return at + ".keyword: duplicate (case-insensitive)";
        }
      }
      if (framing == Framing::kText && attack_prefix.empty()) {
        // Without a prefix the keyword itself is the line's first token.
        if (util::iequals(c.keyword, ping_word) ||
            util::iequals(c.keyword, pong_word)) {
          return at + ".keyword: collides with ping/pong";
        }
        if (util::iequals(c.keyword, hello_words.front())) {
          return at + ".keyword: collides with hello";
        }
      }
    } else if (framing == Framing::kBinary) {
      for (std::size_t j = 0; j < i; ++j) {
        if (commands[j].vector == c.vector) return at + ".vector: duplicate";
      }
    }
  }

  if (keepalive_min_s == 0) return "beacon.keepalive_min_s: must be positive";
  if (keepalive_min_s > keepalive_max_s) {
    return "beacon.keepalive_max_s: must be >= keepalive_min_s";
  }
  if (attacker_quota < 0) return "plan.attacker_quota: must be >= 0";
  if (attacker_quota > 0 && commands.empty()) {
    return "plan.attacker_quota: a family without commands cannot attack";
  }
  if (extra_fallbacks < 0) return "fallback.extra: must be >= 0";
  if (extra_fallbacks > 0 && topology != Topology::kFallback) {
    return "fallback.extra: requires topology 'fallback'";
  }
  return std::nullopt;
}

obs::json::Value FamilyProfile::to_json() const {
  using obs::json::Value;
  auto str = [](std::string_view s) {
    Value v;
    v.type = Value::Type::kString;
    v.str = std::string(s);
    return v;
  };
  auto num = [](double n) {
    Value v;
    v.type = Value::Type::kNumber;
    v.number = n;
    return v;
  };

  Value root;
  root.type = Value::Type::kObject;
  root.object["family"] = str(proto::to_string(id));
  root.object["name"] = str(name);
  root.object["marker"] = str(marker);
  root.object["framing"] = str(to_string(framing));
  root.object["topology"] = str(to_string(topology));

  switch (framing) {
    case Framing::kBinary: {
      Value b;
      b.type = Value::Type::kObject;
      b.object["handshake_magic"] = num(handshake_magic);
      root.object["binary"] = std::move(b);
      break;
    }
    case Framing::kText: {
      Value t;
      t.type = Value::Type::kObject;
      Value hello;
      hello.type = Value::Type::kArray;
      for (const auto& w : hello_words) hello.array.push_back(str(w));
      t.object["hello"] = std::move(hello);
      t.object["hello_arg"] = str(hello_takes_rest ? "rest" : "token");
      t.object["hello_sends"] = str(hello_sends_bot_id ? "bot-id" : "arch");
      t.object["ping"] = str(ping_word);
      t.object["pong"] = str(pong_word);
      t.object["attack_prefix"] = str(attack_prefix);
      root.object["text"] = std::move(t);
      break;
    }
    case Framing::kIrc: {
      Value c;
      c.type = Value::Type::kObject;
      c.object["channel"] = str(irc_channel);
      c.object["attack_prefix"] = str(attack_prefix);
      root.object["irc"] = std::move(c);
      break;
    }
    case Framing::kTlsBeacon: {
      Value t;
      t.type = Value::Type::kObject;
      t.object["client_hello"] = str(util::to_hex(tls_client_hello));
      t.object["server_hello"] = str(util::to_hex(tls_server_hello));
      t.object["beacon"] = str(util::to_hex(tls_beacon));
      t.object["peer_id"] = str(tls_peer_id);
      root.object["tls"] = std::move(t);
      break;
    }
    case Framing::kP2p: break;  // no framing section at all
  }

  if (!commands.empty()) {
    Value cmds;
    cmds.type = Value::Type::kArray;
    for (const auto& c : commands) {
      Value entry;
      entry.type = Value::Type::kObject;
      entry.object["type"] = str(proto::to_string(c.type));
      if (is_text_like()) {
        entry.object["keyword"] = str(c.keyword);
      } else {
        entry.object["vector"] = num(c.vector);
      }
      cmds.array.push_back(std::move(entry));
    }
    root.object["commands"] = std::move(cmds);
  }

  if (framing != Framing::kP2p) {
    Value beacon;
    beacon.type = Value::Type::kObject;
    beacon.object["keepalive_min_s"] = num(keepalive_min_s);
    beacon.object["keepalive_max_s"] = num(keepalive_max_s);
    root.object["beacon"] = std::move(beacon);
  }

  if (attacker_quota > 0) {
    Value plan;
    plan.type = Value::Type::kObject;
    plan.object["attacker_quota"] = num(attacker_quota);
    root.object["plan"] = std::move(plan);
  }
  if (extra_fallbacks > 0) {
    Value fb;
    fb.type = Value::Type::kObject;
    fb.object["extra"] = num(extra_fallbacks);
    root.object["fallback"] = std::move(fb);
  }
  return root;
}

namespace {

void write_pretty(std::string& out, const obs::json::Value& v, int indent) {
  using obs::json::Value;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.type) {
    case Value::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += inner;
        write_pretty(out, v.array[i], indent + 1);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      return;
    }
    case Value::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, member] : v.object) {
        Value k;
        k.type = Value::Type::kString;
        k.str = key;
        out += inner + obs::json::write(k) + ": ";
        write_pretty(out, member, indent + 1);
        if (++i < v.object.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      return;
    }
    default: out += obs::json::write(v); return;
  }
}

}  // namespace

std::string FamilyProfile::to_pretty_json() const {
  std::string out;
  write_pretty(out, to_json(), 0);
  out += '\n';
  return out;
}

std::uint64_t FamilyProfile::content_hash() const {
  return util::fnv1a64(obs::json::write(to_json()));
}

FamilyProfile builtin_profile(proto::Family f) {
  FamilyProfile p;
  p.id = f;
  p.name = proto::to_string(f);
  p.marker = mal::family_marker(f);

  auto keyword_commands = [&](auto keyword_of) {
    for (const proto::AttackType t : proto::attacks_of(f)) {
      Command c;
      c.type = t;
      c.keyword = *keyword_of(t);
      p.commands.push_back(std::move(c));
    }
  };

  switch (f) {
    case proto::Family::kMirai:
      p.framing = Framing::kBinary;
      p.topology = Topology::kFallback;
      p.handshake_magic = 1;
      for (const proto::AttackType t : proto::attacks_of(f)) {
        Command c;
        c.type = t;
        c.vector = *proto::mirai_vector_of(t);
        p.commands.push_back(c);
      }
      p.attacker_quota = 8;
      break;
    case proto::Family::kGafgyt:
      p.framing = Framing::kText;
      p.topology = Topology::kFallback;
      p.hello_words = {"BUILD"};
      p.hello_takes_rest = true;
      p.hello_sends_bot_id = false;
      p.ping_word = "PING";
      p.pong_word = "PONG";
      p.attack_prefix = "!*";
      keyword_commands([](proto::AttackType t) {
        return proto::gafgyt_keyword_of(t);
      });
      p.attacker_quota = 3;
      break;
    case proto::Family::kTsunami:
      // IRC transport; the PRIVMSG body reuses the Gafgyt command grammar
      // (the compiled-in C2 encodes Tsunami commands with the Gafgyt codec).
      p.framing = Framing::kIrc;
      p.topology = Topology::kFallback;
      p.irc_channel = "#tsunami";
      p.attack_prefix = "!*";
      for (const proto::AttackType t : proto::attacks_of(proto::Family::kGafgyt)) {
        Command c;
        c.type = t;
        c.keyword = *proto::gafgyt_keyword_of(t);
        p.commands.push_back(std::move(c));
      }
      break;
    case proto::Family::kDaddyl33t:
      p.framing = Framing::kText;
      p.topology = Topology::kFallback;
      p.hello_words = {"l33t", "LOGIN"};
      p.hello_takes_rest = false;
      p.hello_sends_bot_id = true;
      p.ping_word = ".ping";
      p.pong_word = ".pong";
      p.attack_prefix = "";
      keyword_commands([](proto::AttackType t) {
        return proto::daddyl33t_keyword_of(t);
      });
      p.attacker_quota = 6;
      break;
    case proto::Family::kMozi:
    case proto::Family::kHajime:
      p.framing = Framing::kP2p;
      p.topology = Topology::kP2p;
      break;
    case proto::Family::kVpnFilter:
      p.framing = Framing::kTlsBeacon;
      p.topology = Topology::kFallback;
      p.tls_client_hello = util::from_hex("16030300310100002d");
      p.tls_server_hello = util::from_hex("160303002a020000");
      p.tls_beacon = util::from_hex("170303000a");
      p.tls_peer_id = "vpnfilter-node";
      break;
  }
  return p;
}

}  // namespace malnet::profile
