// Profile-parameterised C2 wire codecs: the binary and text message
// grammars from proto/mirai|gafgyt|daddyl33t generalised over a
// FamilyProfile. For every builtin profile these produce and accept bytes
// identical to the compiled-in proto::* codecs (asserted exhaustively in
// tests/test_profile.cpp) — that identity is what makes the data-driven
// path a drop-in replacement.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "profile/profile.hpp"
#include "proto/attack.hpp"
#include "util/bytes.hpp"

namespace malnet::profile::wire {

// --- binary framing (Mirai grammar, magic parameterised) -------------------

[[nodiscard]] util::Bytes encode_handshake(const FamilyProfile& p,
                                           const std::string& bot_id);
struct Handshake {
  std::string bot_id;
};
[[nodiscard]] std::optional<Handshake> decode_handshake(const FamilyProfile& p,
                                                        util::BytesView wire);

[[nodiscard]] util::Bytes encode_keepalive();
[[nodiscard]] bool is_keepalive(util::BytesView wire);

/// u16-length-framed attack body; vector id from the profile's command
/// table. Throws std::invalid_argument for a type the profile lacks.
[[nodiscard]] util::Bytes encode_binary_attack(const FamilyProfile& p,
                                               const proto::AttackCommand& cmd);
[[nodiscard]] std::optional<proto::AttackCommand> decode_binary_attack(
    const FamilyProfile& p, util::BytesView wire);

// --- text framing (Gafgyt/Daddyl33t grammar, words parameterised) ----------

/// "HELLO-WORDS <arg>\n" — arg is the bot id or arch per hello_sends.
[[nodiscard]] std::string encode_hello(const FamilyProfile& p,
                                       const std::string& arg);
/// The hello argument, or nullopt if the line is not this profile's hello.
[[nodiscard]] std::optional<std::string> decode_hello(const FamilyProfile& p,
                                                      std::string_view line);

[[nodiscard]] std::string encode_ping(const FamilyProfile& p);
[[nodiscard]] std::string encode_pong(const FamilyProfile& p);
[[nodiscard]] bool is_ping(const FamilyProfile& p, std::string_view line);
[[nodiscard]] bool is_pong(const FamilyProfile& p, std::string_view line);

/// "[PREFIX ]KEYWORD ip port secs\n". Throws std::invalid_argument for a
/// type the profile lacks.
[[nodiscard]] std::string encode_text_attack(const FamilyProfile& p,
                                             const proto::AttackCommand& cmd);
[[nodiscard]] std::optional<proto::AttackCommand> decode_text_attack(
    const FamilyProfile& p, std::string_view line);

}  // namespace malnet::profile::wire
