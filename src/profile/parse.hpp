// Profile file parsing: JSON text -> validated FamilyProfile, with enough
// error context for `malnetctl profile check` to point at the problem.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "profile/profile.hpp"

namespace malnet::profile {

/// Why a profile failed to load. For JSON syntax errors `line`/`column`
/// are 1-based positions of the byte the parser stopped at; for schema and
/// validation errors they are 0 and `field` names the offending key path.
struct ParseIssue {
  std::string message;
  int line = 0;
  int column = 0;
  std::string field;

  /// "line 3, column 7: ..." or "field 'text.ping': ...".
  [[nodiscard]] std::string render() const;
};

/// Parses and validates one profile document. Returns std::nullopt and
/// fills `issue` (if non-null) on any syntax, schema, or validation error —
/// an invalid profile is never returned.
[[nodiscard]] std::optional<FamilyProfile> parse_profile(std::string_view text,
                                                         ParseIssue* issue);

}  // namespace malnet::profile
