// Declarative family profiles (DESIGN.md §16).
//
// The paper's family-level behaviour — Mirai's binary C2 framing vs
// Gafgyt's text protocol, the command sets each family maps to attack
// programs, beacon cadence, C2 topology — used to live in switch
// statements across proto/, botnet/ and emu/. A FamilyProfile moves those
// tables into data: a small deterministic JSON document (parsed with the
// in-tree obs::json parser) that botnet::C2Server, emu::MalwareProcess and
// botnet::World consume instead of switching on proto::Family. The enum
// survives as an ID; the behaviour is the profile.
//
// builtin_profile(f) expresses the compiled-in behaviour of each family as
// a profile, built from the proto tables themselves — so the committed
// profiles/*.json are provably byte-identical to the pre-profile code path
// (the golden study comparison in tests/test_profile.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "proto/attack.hpp"
#include "proto/family.hpp"
#include "util/bytes.hpp"

namespace malnet::profile {

/// How the family frames its C2 dialogue on the wire.
enum class Framing {
  kBinary,     // magic+id handshake, u16-length-framed commands (Mirai lineage)
  kText,       // newline-delimited command lines (Gafgyt lineage)
  kIrc,        // RFC 2812 subset; commands ride PRIVMSG (Tsunami)
  kTlsBeacon,  // canned TLS-looking hello/beacon bytes (VPNFilter)
  kP2p,        // UDP DHT overlay; no TCP C2 at all (Mozi/Hajime)
};

/// The C2 topology the family's samples are built around (§16): a single
/// hard-coded C2, a primary plus a fallback list, or a P2P overlay.
enum class Topology { kSingle, kFallback, kP2p };

[[nodiscard]] std::string to_string(Framing f);
[[nodiscard]] std::optional<Framing> framing_from_string(std::string_view s);
[[nodiscard]] std::string to_string(Topology t);
[[nodiscard]] std::optional<Topology> topology_from_string(std::string_view s);
/// Inverse of proto::to_string(AttackType), case-insensitive.
[[nodiscard]] std::optional<proto::AttackType> attack_type_from_string(
    std::string_view s);

/// One command the family can issue: the behaviour program it maps to
/// (proto::AttackType drives emu::launch_attack) plus its wire spelling —
/// a binary vector id or a text keyword, depending on the framing.
struct Command {
  proto::AttackType type = proto::AttackType::kUdpFlood;
  std::uint8_t vector = 0;  // binary framing: wire vector id
  std::string keyword;      // text/irc framing: command keyword

  bool operator==(const Command&) const = default;
};

struct FamilyProfile {
  proto::Family id = proto::Family::kMirai;  // the enum survives as an ID
  std::string name;    // registry key; builtins use proto::to_string(id)
  std::string marker;  // string embedded in forged binaries (YARA anchor)
  Framing framing = Framing::kBinary;
  Topology topology = Topology::kSingle;

  // --- binary framing ------------------------------------------------------
  std::uint32_t handshake_magic = 1;

  // --- text framing --------------------------------------------------------
  std::vector<std::string> hello_words;  // ["BUILD"] or ["l33t", "LOGIN"]
  /// Hello argument grammar: the trimmed rest of the line (Gafgyt's
  /// "BUILD <anything>") vs exactly one trailing token (Daddyl33t's
  /// "l33t LOGIN <id>").
  bool hello_takes_rest = true;
  /// What the bot sends as the hello argument: its bot id, or its CPU
  /// architecture string.
  bool hello_sends_bot_id = false;
  std::string ping_word = "PING";
  std::string pong_word = "PONG";
  std::string attack_prefix;  // "!*" or "" before "KW ip port secs"

  // --- irc framing ---------------------------------------------------------
  std::string irc_channel;

  // --- tls-beacon framing --------------------------------------------------
  util::Bytes tls_client_hello;
  util::Bytes tls_server_hello;
  util::Bytes tls_beacon;
  std::string tls_peer_id;  // the id the server registers for any hello

  /// Commands in planner draw order: the attack planner indexes this
  /// vector uniformly, so the order is part of the profile's semantics.
  std::vector<Command> commands;

  // --- beacon cadence: per-sample keepalive, drawn uniformly (inclusive) ---
  std::uint32_t keepalive_min_s = 45;
  std::uint32_t keepalive_max_s = 90;

  // --- planner knobs -------------------------------------------------------
  int attacker_quota = 0;   // share of the §5 attacker fleet
  int extra_fallbacks = 0;  // kFallback: fallback C2s beyond the spec's one

  bool operator==(const FamilyProfile&) const = default;

  [[nodiscard]] bool is_text_like() const {
    return framing == Framing::kText || framing == Framing::kIrc;
  }
  [[nodiscard]] const Command* by_type(proto::AttackType t) const;
  [[nodiscard]] const Command* by_vector(std::uint8_t v) const;
  /// Case-insensitive keyword lookup (the text decoders accept any case).
  [[nodiscard]] const Command* by_keyword(std::string_view kw) const;
  [[nodiscard]] std::vector<proto::AttackType> command_types() const;

  /// Schema + cross-reference checks (§16's validation rules): framing
  /// fields consistent and unambiguous, commands well-formed and unique,
  /// cadence bounds sane. Returns a description of the first violation,
  /// prefixed with the offending field path.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Canonical JSON form. obs::json::write renders object keys sorted, so
  /// write(to_json()) is the profile's canonical text.
  [[nodiscard]] obs::json::Value to_json() const;
  /// Indented rendering of the canonical form (what `profile dump` writes).
  [[nodiscard]] std::string to_pretty_json() const;
  /// fnv1a64 over the canonical text — the hash `profile check` prints and
  /// Registry::set_hash folds into study_fingerprint.
  [[nodiscard]] std::uint64_t content_hash() const;
};

/// The compiled-in behaviour of `f` expressed as a profile, built from the
/// proto command tables and mal::family_marker — the single source of
/// truth the committed profiles/*.json are generated from.
[[nodiscard]] FamilyProfile builtin_profile(proto::Family f);

}  // namespace malnet::profile
