// The profile registry: the set of family profiles a study runs with.
//
// A Registry starts populated with the seven builtin profiles (keyed by
// their family names, "Mirai" .. "VPNFilter") and can then load profile
// files that override a builtin or add a named variant. botnet::World,
// botnet::C2Server and emu::MalwareProcess resolve behaviour through the
// registry; set_hash() feeds store::study_fingerprint so a changed profile
// invalidates --resume while a byte-identical reload does not.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "profile/profile.hpp"

namespace malnet::profile {

class Registry {
 public:
  /// Installs the seven builtin profiles.
  Registry();

  /// The process-wide builtin registry (no files loaded). Consumers that
  /// are handed no registry fall back to this, which preserves the
  /// pre-profile compiled-in behaviour exactly.
  [[nodiscard]] static const Registry& builtin();

  /// Loads one profile file, replacing any same-named profile. Returns an
  /// error string (prefixed with the path) instead of loading anything on
  /// parse or validation failure.
  [[nodiscard]] std::optional<std::string> load_file(const std::string& path);

  /// Loads every *.json file in `dir` in sorted name order (so the
  /// resulting registry — and set_hash() — is independent of directory
  /// enumeration order). Stops at the first bad file.
  [[nodiscard]] std::optional<std::string> load_dir(const std::string& dir);

  /// The profile driving family `f`: the one named proto::to_string(f).
  /// Never null — builtins are always present.
  [[nodiscard]] const FamilyProfile* active(proto::Family f) const;

  /// Lookup by profile name ("mirai-fallback"); nullptr if absent.
  [[nodiscard]] const FamilyProfile* by_name(const std::string& name) const;

  /// All profiles in name order.
  [[nodiscard]] std::vector<const FamilyProfile*> all() const;

  /// Order-independent content hash of the whole loaded set, folded into
  /// study_fingerprint. Loading files byte-equivalent to the builtins
  /// yields the builtin hash (profiles hash over their canonical form).
  [[nodiscard]] std::uint64_t set_hash() const;

 private:
  // std::map: node stability keeps FamilyProfile pointers valid across
  // later load_file calls, and iteration order is the canonical name order
  // set_hash depends on.
  std::map<std::string, FamilyProfile> profiles_;
};

}  // namespace malnet::profile
