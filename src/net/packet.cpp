#include "net/packet.hpp"

#include <sstream>

#include "net/checksum.hpp"

namespace malnet::net {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kUdp: return "udp";
    case Protocol::kIcmp: return "icmp";
  }
  return "proto" + std::to_string(static_cast<int>(p));
}

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = b & 0x01;
  f.syn = b & 0x02;
  f.rst = b & 0x04;
  f.psh = b & 0x08;
  f.ack = b & 0x10;
  return f;
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += 'S';
  if (ack) s += 'A';
  if (psh) s += 'P';
  if (fin) s += 'F';
  if (rst) s += 'R';
  return s.empty() ? "-" : s;
}

std::string Packet::summary() const {
  std::ostringstream os;
  os << util::to_string(time) << ' ' << net::to_string(src) << ':' << src_port << " > "
     << net::to_string(dst) << ':' << dst_port << ' ' << net::to_string(proto);
  if (proto == Protocol::kTcp) os << " [" << flags.to_string() << "]";
  if (proto == Protocol::kIcmp)
    os << " type=" << int{icmp.type} << " code=" << int{icmp.code};
  os << " len=" << payload.size();
  return os.str();
}

FlowKey FlowKey::of(const Packet& p) {
  const Endpoint s = p.source(), d = p.destination();
  if (s <= d) return {s, d, p.proto};
  return {d, s, p.proto};
}

util::Bytes to_wire(const Packet& p) {
  // Transport segment first (checksum needs total length).
  util::ByteWriter seg;
  switch (p.proto) {
    case Protocol::kTcp: {
      seg.u16(p.src_port);
      seg.u16(p.dst_port);
      seg.u32(p.seq);
      seg.u32(p.ack_num);
      seg.u8(0x50);  // data offset 5 words, no options
      seg.u8(p.flags.to_byte());
      seg.u16(0xFFFF);  // window
      seg.u16(0);       // checksum placeholder
      seg.u16(0);       // urgent pointer
      seg.raw(p.payload);
      break;
    }
    case Protocol::kUdp: {
      seg.u16(p.src_port);
      seg.u16(p.dst_port);
      seg.u16(static_cast<std::uint16_t>(8 + p.payload.size()));
      seg.u16(0);  // checksum placeholder
      seg.raw(p.payload);
      break;
    }
    case Protocol::kIcmp: {
      seg.u8(p.icmp.type);
      seg.u8(p.icmp.code);
      seg.u16(0);  // checksum placeholder
      seg.u32(0);  // rest of header
      seg.raw(p.payload);
      break;
    }
  }
  util::Bytes segment = seg.take();
  const std::size_t csum_off = (p.proto == Protocol::kTcp)   ? 16
                               : (p.proto == Protocol::kUdp) ? 6
                                                             : 2;
  const std::uint16_t csum =
      (p.proto == Protocol::kIcmp)
          ? inet_checksum(segment)
          : transport_checksum(p.src, p.dst, static_cast<std::uint8_t>(p.proto),
                               segment);
  segment[csum_off] = static_cast<std::uint8_t>(csum >> 8);
  segment[csum_off + 1] = static_cast<std::uint8_t>(csum);

  // IPv4 header.
  util::ByteWriter ip;
  ip.u8(0x45);  // version 4, IHL 5
  ip.u8(0);     // DSCP/ECN
  ip.u16(static_cast<std::uint16_t>(20 + segment.size()));
  ip.u16(0);       // identification
  ip.u16(0x4000);  // don't fragment
  ip.u8(p.ttl);
  ip.u8(static_cast<std::uint8_t>(p.proto));
  ip.u16(0);  // header checksum placeholder
  ip.u32(p.src.value);
  ip.u32(p.dst.value);
  util::Bytes header = ip.take();
  const std::uint16_t hc = inet_checksum(header);
  header[10] = static_cast<std::uint8_t>(hc >> 8);
  header[11] = static_cast<std::uint8_t>(hc);

  header.insert(header.end(), segment.begin(), segment.end());
  return header;
}

std::optional<Packet> from_wire(util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    const std::uint8_t vihl = r.u8();
    if ((vihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = static_cast<std::size_t>(vihl & 0xF) * 4;
    if (ihl < 20) return std::nullopt;
    r.skip(1);  // DSCP
    const std::uint16_t total_len = r.u16();
    if (total_len > wire.size() || total_len < ihl) return std::nullopt;
    r.skip(4);  // id + frag
    Packet p;
    p.ttl = r.u8();
    const std::uint8_t proto = r.u8();
    r.skip(2);  // header checksum (not validated on parse)
    p.src = Ipv4{r.u32()};
    p.dst = Ipv4{r.u32()};
    r.skip(ihl - 20);  // options
    const std::size_t seg_len = total_len - ihl;
    switch (proto) {
      case 6: {
        p.proto = Protocol::kTcp;
        if (seg_len < 20) return std::nullopt;
        p.src_port = r.u16();
        p.dst_port = r.u16();
        p.seq = r.u32();
        p.ack_num = r.u32();
        const std::size_t doff = static_cast<std::size_t>(r.u8() >> 4) * 4;
        if (doff < 20 || doff > seg_len) return std::nullopt;
        p.flags = TcpFlags::from_byte(r.u8());
        r.skip(4);            // window + checksum
        r.skip(2);            // urgent
        r.skip(doff - 20);    // options
        p.payload = r.raw(seg_len - doff);
        break;
      }
      case 17: {
        p.proto = Protocol::kUdp;
        if (seg_len < 8) return std::nullopt;
        p.src_port = r.u16();
        p.dst_port = r.u16();
        const std::uint16_t ulen = r.u16();
        if (ulen < 8 || ulen > seg_len) return std::nullopt;
        r.skip(2);  // checksum
        p.payload = r.raw(ulen - 8);
        break;
      }
      case 1: {
        p.proto = Protocol::kIcmp;
        if (seg_len < 8) return std::nullopt;
        p.icmp.type = r.u8();
        p.icmp.code = r.u8();
        r.skip(6);  // checksum + rest
        p.payload = r.raw(seg_len - 8);
        break;
      }
      default:
        return std::nullopt;
    }
    return p;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

}  // namespace malnet::net
