// Packet model. The simulated internet moves `Packet` values between hosts;
// serialization to real IPv4/TCP/UDP/ICMP wire bytes is provided so captures
// can be written as genuine pcap files and so the IDS and the C2-traffic
// classifier can operate on wire bytes like their real counterparts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"
#include "util/simtime.hpp"

namespace malnet::net {

enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kIcmp = 1,
};

[[nodiscard]] std::string to_string(Protocol p);

/// TCP flag bits (subset we model).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  [[nodiscard]] std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
  [[nodiscard]] std::string to_string() const;
};

/// ICMP type/code pair; the BLACKNURSE attack of §5.1 uses type 3 code 3.
struct IcmpHeader {
  std::uint8_t type = 8;  // echo request by default
  std::uint8_t code = 0;
};

/// One simulated packet. `payload` carries the application bytes. For TCP
/// the sequence numbers are maintained by the connection state machine in
/// sim/; for UDP and ICMP they are unused.
struct Packet {
  util::SimTime time;  // send timestamp, stamped by the simulator
  Ipv4 src;
  Ipv4 dst;
  Protocol proto = Protocol::kUdp;
  Port src_port = 0;
  Port dst_port = 0;
  TcpFlags flags;             // TCP only
  std::uint32_t seq = 0;      // TCP only
  std::uint32_t ack_num = 0;  // TCP only
  IcmpHeader icmp;            // ICMP only
  std::uint8_t ttl = 64;
  util::Bytes payload;

  [[nodiscard]] Endpoint source() const { return {src, src_port}; }
  [[nodiscard]] Endpoint destination() const { return {dst, dst_port}; }
  [[nodiscard]] std::string summary() const;
};

/// A bidirectional flow key: canonical ordering so both directions of a
/// conversation map to the same key.
struct FlowKey {
  Endpoint a;  // lexicographically smaller endpoint
  Endpoint b;
  Protocol proto = Protocol::kTcp;

  constexpr auto operator<=>(const FlowKey&) const = default;

  static FlowKey of(const Packet& p);
};

/// Serializes a packet as IPv4 wire bytes (IPv4 header + TCP/UDP/ICMP header
/// + payload), with correct header checksums.
[[nodiscard]] util::Bytes to_wire(const Packet& p);

/// Parses wire bytes produced by to_wire (or any well-formed IPv4 packet of
/// a supported protocol). Returns nullopt on malformed/unsupported input.
[[nodiscard]] std::optional<Packet> from_wire(util::BytesView wire);

}  // namespace malnet::net
