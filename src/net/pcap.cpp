#include "net/pcap.hpp"

#include <fstream>

namespace malnet::net {

namespace {
constexpr std::uint32_t kMagicBe = 0xA1B2C3D4;  // microsecond timestamps
constexpr std::uint32_t kLinktypeRaw = 101;     // raw IPv4
}  // namespace

PcapWriter::PcapWriter() {
  buf_.u32(kMagicBe);
  buf_.u16(2);   // version major
  buf_.u16(4);   // version minor
  buf_.u32(0);   // thiszone
  buf_.u32(0);   // sigfigs
  buf_.u32(65535);  // snaplen
  buf_.u32(kLinktypeRaw);
}

void PcapWriter::add(const Packet& p) {
  const util::Bytes wire = to_wire(p);
  const auto sec = static_cast<std::uint32_t>(p.time.us / 1'000'000);
  const auto usec = static_cast<std::uint32_t>(p.time.us % 1'000'000);
  buf_.u32(sec);
  buf_.u32(usec);
  buf_.u32(static_cast<std::uint32_t>(wire.size()));  // incl_len
  buf_.u32(static_cast<std::uint32_t>(wire.size()));  // orig_len
  buf_.raw(wire);
  ++count_;
}

void PcapWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("PcapWriter::save: cannot open " + path);
  f.write(reinterpret_cast<const char*>(buf_.bytes().data()),
          static_cast<std::streamsize>(buf_.bytes().size()));
  if (!f) throw std::runtime_error("PcapWriter::save: write failed for " + path);
}

std::vector<Packet> read_pcap(util::BytesView data) {
  util::ByteReader r(data);
  const std::uint32_t magic = r.u32();
  if (magic != kMagicBe) throw util::TruncatedInput("read_pcap: bad magic");
  r.skip(16);  // version, zone, sigfigs, snaplen
  const std::uint32_t linktype = r.u32();
  if (linktype != kLinktypeRaw) throw util::TruncatedInput("read_pcap: bad linktype");
  std::vector<Packet> out;
  while (!r.done()) {
    const std::uint32_t sec = r.u32();
    const std::uint32_t usec = r.u32();
    const std::uint32_t incl = r.u32();
    r.skip(4);  // orig_len
    const util::Bytes wire = r.raw(incl);
    auto p = from_wire(wire);
    if (!p) throw util::TruncatedInput("read_pcap: unparseable packet");
    p->time = util::SimTime{static_cast<std::int64_t>(sec) * 1'000'000 + usec};
    out.push_back(std::move(*p));
  }
  return out;
}

std::vector<Packet> load_pcap(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_pcap: cannot open " + path);
  util::Bytes data((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  return read_pcap(data);
}

}  // namespace malnet::net
