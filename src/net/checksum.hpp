// Internet checksum (RFC 1071) used by the IPv4/TCP/UDP/ICMP serializers.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace malnet::net {

/// One's-complement sum over `data`, folded to 16 bits and complemented.
[[nodiscard]] std::uint16_t inet_checksum(util::BytesView data);

/// TCP/UDP checksum including the IPv4 pseudo-header.
[[nodiscard]] std::uint16_t transport_checksum(Ipv4 src, Ipv4 dst, std::uint8_t proto,
                                               util::BytesView segment);

}  // namespace malnet::net
