// pcap capture files. The sandbox records all malware traffic in the
// standard libpcap format (LINKTYPE_RAW, i.e. bare IPv4 packets) so that
// captures written by this library open in Wireshark/tcpdump, exactly like
// the paper's experimental artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace malnet::net {

/// Serializes packets into an in-memory pcap byte stream.
class PcapWriter {
 public:
  PcapWriter();

  void add(const Packet& p);
  [[nodiscard]] std::size_t packet_count() const { return count_; }
  [[nodiscard]] const util::Bytes& bytes() const { return buf_.bytes(); }

  /// Writes the capture to a file; throws std::runtime_error on I/O error.
  void save(const std::string& path) const;

 private:
  util::ByteWriter buf_;
  std::size_t count_ = 0;
};

/// Parses a pcap byte stream written by PcapWriter (or any LINKTYPE_RAW
/// big-endian pcap of IPv4 packets). Throws util::TruncatedInput on
/// malformed input.
[[nodiscard]] std::vector<Packet> read_pcap(util::BytesView data);
[[nodiscard]] std::vector<Packet> load_pcap(const std::string& path);

}  // namespace malnet::net
