// IPv4 address, subnet and endpoint value types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace malnet::net {

/// An IPv4 address stored in host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t v) : value(v) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  constexpr auto operator<=>(const Ipv4&) const = default;

  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value >> (8 * (3 - i)));
  }
  [[nodiscard]] constexpr bool is_unspecified() const { return value == 0; }
};

/// Parses dotted-quad notation. Returns nullopt on malformed input.
[[nodiscard]] std::optional<Ipv4> parse_ipv4(std::string_view s);
[[nodiscard]] std::string to_string(Ipv4 ip);

/// A CIDR subnet, e.g. 192.0.2.0/24.
struct Subnet {
  Ipv4 base;
  int prefix_len = 24;

  constexpr auto operator<=>(const Subnet&) const = default;

  [[nodiscard]] constexpr std::uint32_t mask() const {
    return prefix_len == 0 ? 0u : ~0u << (32 - prefix_len);
  }
  [[nodiscard]] constexpr bool contains(Ipv4 ip) const {
    return (ip.value & mask()) == (base.value & mask());
  }
  [[nodiscard]] constexpr std::uint32_t size() const {
    return prefix_len == 0 ? ~0u : (1u << (32 - prefix_len));
  }
  /// Host address at `offset` within the subnet (0 = network address).
  [[nodiscard]] constexpr Ipv4 host(std::uint32_t offset) const {
    return Ipv4{(base.value & mask()) | (offset & ~mask())};
  }
};

[[nodiscard]] std::optional<Subnet> parse_subnet(std::string_view s);
[[nodiscard]] std::string to_string(const Subnet& s);

using Port = std::uint16_t;

/// A transport endpoint (address:port).
struct Endpoint {
  Ipv4 ip;
  Port port = 0;

  constexpr auto operator<=>(const Endpoint&) const = default;
};

[[nodiscard]] std::string to_string(const Endpoint& e);
[[nodiscard]] std::optional<Endpoint> parse_endpoint(std::string_view s);

}  // namespace malnet::net

template <>
struct std::hash<malnet::net::Ipv4> {
  std::size_t operator()(const malnet::net::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};

template <>
struct std::hash<malnet::net::Endpoint> {
  std::size_t operator()(const malnet::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.ip.value) << 16) ^ e.port);
  }
};
