#include "net/ipv4.hpp"

#include <sstream>

#include "util/str.hpp"

namespace malnet::net {

std::optional<Ipv4> parse_ipv4(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    const auto oct = util::parse_u64(p);
    if (!oct || *oct > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(*oct);
  }
  return Ipv4{v};
}

std::string to_string(Ipv4 ip) {
  std::ostringstream os;
  os << int{ip.octet(0)} << '.' << int{ip.octet(1)} << '.' << int{ip.octet(2)} << '.'
     << int{ip.octet(3)};
  return os.str();
}

std::optional<Subnet> parse_subnet(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = parse_ipv4(s.substr(0, slash));
  const auto len = util::parse_u64(s.substr(slash + 1));
  if (!ip || !len || *len > 32) return std::nullopt;
  return Subnet{*ip, static_cast<int>(*len)};
}

std::string to_string(const Subnet& s) {
  return to_string(s.base) + "/" + std::to_string(s.prefix_len);
}

std::string to_string(const Endpoint& e) {
  return to_string(e.ip) + ":" + std::to_string(e.port);
}

std::optional<Endpoint> parse_endpoint(std::string_view s) {
  const auto colon = s.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto ip = parse_ipv4(s.substr(0, colon));
  const auto port = util::parse_u64(s.substr(colon + 1));
  if (!ip || !port || *port > 0xFFFF) return std::nullopt;
  return Endpoint{*ip, static_cast<Port>(*port)};
}

}  // namespace malnet::net
