#include "net/checksum.hpp"

namespace malnet::net {

namespace {
std::uint32_t sum16(util::BytesView data, std::uint32_t acc) {
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (data.size() % 2) acc += static_cast<std::uint32_t>(data.back() << 8);
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}
}  // namespace

std::uint16_t inet_checksum(util::BytesView data) { return fold(sum16(data, 0)); }

std::uint16_t transport_checksum(Ipv4 src, Ipv4 dst, std::uint8_t proto,
                                 util::BytesView segment) {
  std::uint32_t acc = 0;
  acc += src.value >> 16;
  acc += src.value & 0xFFFF;
  acc += dst.value >> 16;
  acc += dst.value & 0xFFFF;
  acc += proto;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum16(segment, acc));
}

}  // namespace malnet::net
