#include "sim/scheduler.hpp"

#include <algorithm>
#include <chrono>

namespace malnet::sim {

EventId EventScheduler::at(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Ev{std::max(t, now_), seq_++, id, std::move(fn), current_tag_});
  ++live_;
  return id;
}

EventId EventScheduler::after(Duration d, std::function<void()> fn) {
  return at(now_ + d, std::move(fn));
}

void EventScheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  if (cancelled_.insert(id).second && live_ > 0) --live_;
}

void EventScheduler::prune() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool EventScheduler::pop_one() {
  prune();
  if (queue_.empty()) return false;
  // const_cast to move the callback out; the element is popped immediately.
  Ev ev = std::move(const_cast<Ev&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  if (live_ > 0) --live_;
  ++executed_;
  // Restore the event's phase as ambient so anything it schedules inherits
  // the causality chain's attribution.
  current_tag_ = ev.tag;
  ++executed_by_tag_[ev.tag];
  if (wall_profiling_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    wall_ns_by_tag_[ev.tag] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    ev.fn();
  }
  return true;
}

std::size_t EventScheduler::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && pop_one()) ++n;
  return n;
}

std::size_t EventScheduler::run_until(SimTime t) {
  std::size_t n = 0;
  prune();
  while (!queue_.empty() && queue_.top().t <= t) {
    if (!pop_one()) break;
    ++n;
    prune();
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace malnet::sim
