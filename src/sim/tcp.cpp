#include "sim/tcp.hpp"

#include "sim/network.hpp"

namespace malnet::sim {

std::string to_string(ConnectOutcome o) {
  switch (o) {
    case ConnectOutcome::kConnected: return "connected";
    case ConnectOutcome::kRefused: return "refused";
    case ConnectOutcome::kTimeout: return "timeout";
  }
  return "?";
}

TcpConn::TcpConn(Host& host, net::Endpoint local, net::Endpoint remote, bool inbound,
                 std::uint32_t iss)
    : host_(host),
      local_(local),
      remote_(remote),
      inbound_(inbound),
      state_(inbound ? State::kSynRcvd : State::kSynSent),
      snd_next_(iss),
      opened_at_(host.now()) {}

void TcpConn::emit(net::TcpFlags flags, util::BytesView payload) {
  net::Packet p;
  p.src = local_.ip;
  p.dst = remote_.ip;
  p.proto = net::Protocol::kTcp;
  p.src_port = local_.port;
  p.dst_port = remote_.port;
  p.flags = flags;
  p.seq = snd_next_;
  p.ack_num = rcv_next_;
  p.payload.assign(payload.begin(), payload.end());
  // SYN and FIN each consume one sequence number; data consumes its length.
  snd_next_ += static_cast<std::uint32_t>(payload.size());
  if (flags.syn || flags.fin) ++snd_next_;
  host_.send_out(std::move(p));
}

void TcpConn::send(util::BytesView data) {
  if (state_ != State::kEstablished || data.empty()) return;
  bytes_tx_ += data.size();
  emit(net::TcpFlags{.syn = false, .ack = true, .fin = false, .rst = false, .psh = true},
       data);
}

void TcpConn::send(std::string_view data) {
  send(util::BytesView{reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
}

void TcpConn::close() {
  if (state_ == State::kClosed) return;
  if (state_ == State::kEstablished && !fin_sent_) {
    fin_sent_ = true;
    emit(net::TcpFlags{.syn = false, .ack = true, .fin = true, .rst = false, .psh = false});
  }
  become_closed(/*notify=*/false);
}

void TcpConn::reset() {
  if (state_ == State::kClosed) return;
  emit(net::TcpFlags{.syn = false, .ack = false, .fin = false, .rst = true, .psh = false});
  become_closed(/*notify=*/false);
}

void TcpConn::become_closed(bool notify) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (notify && on_close_) on_close_(*this);
  host_.schedule_conn_erase({local_.port, remote_});
}

void TcpConn::handle(const net::Packet& p) {
  if (p.flags.rst) {
    become_closed(/*notify=*/true);
    return;
  }
  switch (state_) {
    case State::kSynSent:
      if (p.flags.syn && p.flags.ack) {
        rcv_next_ = p.seq + 1;
        state_ = State::kEstablished;
        emit(net::TcpFlags{.syn = false, .ack = true, .fin = false, .rst = false,
                           .psh = false});
        // Host resolves the pending-connect callback after we return.
      }
      break;
    case State::kSynRcvd:
      if (p.flags.ack && !p.flags.syn) {
        state_ = State::kEstablished;
        // Fall through to possible piggy-backed data below.
      }
      [[fallthrough]];
    case State::kEstablished: {
      if (state_ != State::kEstablished) break;
      // Sequence validation for segments that consume sequence space (data
      // and FIN). A duplicated or retransmitted segment sits behind
      // rcv_next_ and must not re-deliver its payload or re-close; a future
      // segment waits in the one-deep reorder buffer until the gap closes.
      const bool consumes = !p.payload.empty() || p.flags.fin;
      if (consumes) {
        const auto delta = static_cast<std::int32_t>(p.seq - rcv_next_);
        if (delta < 0) break;  // stale duplicate: drop
        if (delta > 0) {
          // Out of order: keep the earliest future segment seen.
          if (!ooo_buffer_ ||
              static_cast<std::int32_t>(p.seq - ooo_buffer_->seq) < 0) {
            ooo_buffer_ = p;
          }
          break;
        }
      }
      if (!p.payload.empty()) {
        rcv_next_ = p.seq + static_cast<std::uint32_t>(p.payload.size());
        bytes_rx_ += p.payload.size();
        if (on_data_) on_data_(*this, p.payload);
        if (state_ == State::kClosed) return;  // handler closed us
      }
      if (p.flags.fin) {
        rcv_next_ = p.seq + static_cast<std::uint32_t>(p.payload.size()) + 1;
        if (!fin_sent_) {
          fin_sent_ = true;
          emit(net::TcpFlags{.syn = false, .ack = true, .fin = true, .rst = false,
                             .psh = false});
        }
        become_closed(/*notify=*/true);
        return;
      }
      // The gap may have closed: replay the buffered segment if it is next.
      if (ooo_buffer_ &&
          static_cast<std::int32_t>(ooo_buffer_->seq - rcv_next_) <= 0) {
        const net::Packet buffered = *std::move(ooo_buffer_);
        ooo_buffer_.reset();
        handle(buffered);
        return;
      }
      break;
    }
    case State::kClosed:
      break;  // late segment after close: ignore
  }
}

}  // namespace malnet::sim
