#include "sim/network.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace malnet::sim {

Network::Network(EventScheduler& sched, NetworkConfig cfg)
    : sched_(sched), cfg_(cfg), rng_(cfg.seed, util::fnv1a64("network")) {
  if (cfg_.min_latency > cfg_.max_latency) {
    throw std::invalid_argument("NetworkConfig: min_latency > max_latency");
  }
  if (cfg_.loss < 0.0 || cfg_.loss >= 1.0) {
    throw std::invalid_argument("NetworkConfig: loss out of [0, 1)");
  }
}

void Network::attach(Host& h) {
  const auto [it, inserted] = hosts_.emplace(h.addr(), &h);
  if (!inserted) {
    throw std::logic_error("Network::attach: duplicate address " +
                           net::to_string(h.addr()));
  }
}

void Network::detach(Host& h) { hosts_.erase(h.addr()); }

Host* Network::host_at(net::Ipv4 addr) const {
  const auto it = hosts_.find(addr);
  return it == hosts_.end() ? nullptr : it->second;
}

Duration Network::latency(net::Ipv4 a, net::Ipv4 b) const {
  // Deterministic hash of the ordered pair -> [min, max] latency. Stable
  // across runs and independent of traffic history.
  std::uint64_t h = (static_cast<std::uint64_t>(a.value) << 32) | b.value;
  std::uint64_t s = h;
  h = util::splitmix64(s);
  const auto span =
      static_cast<std::uint64_t>(cfg_.max_latency.us - cfg_.min_latency.us + 1);
  return Duration{cfg_.min_latency.us + static_cast<std::int64_t>(h % span)};
}

void Network::transmit(net::Packet p) {
  p.time = now();
  ++tx_count_;
  if (p.proto == net::Protocol::kUdp && p.dst_port == 53) ++dns_count_;
  if (tap_) tap_(p);

  if (cfg_.loss > 0.0 && rng_.chance(cfg_.loss)) {
    ++loss_count_;
    return;  // congestion: dropped in flight
  }

  // The fault hook draws from its own RNG stream, so installing one never
  // perturbs the network's congestion-loss stream.
  FaultVerdict verdict;
  if (fault_hook_) verdict = fault_hook_(p);
  if (verdict.drop) {
    ++loss_count_;
    return;
  }

  Host* dst = host_at(p.dst);
  if (dst == nullptr) {
    ++dark_count_;
    return;  // dark address space: the packet vanishes
  }

  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(p.src.value) << 32) | p.dst.value;
  SimTime deliver_at = now() + latency(p.src, p.dst) + verdict.extra_latency;
  if (!verdict.reorder) {
    auto& last = last_delivery_[pair_key];
    if (deliver_at <= last) deliver_at = last + Duration::micros(1);
    last = deliver_at;
  }

  // Duplicates trail the original by a whisker; they deliberately bypass
  // the FIFO clamp update so they model duplicated deliveries of the same
  // send, not new sends.
  for (int i = 0; i < verdict.duplicates; ++i) {
    schedule_delivery(deliver_at + Duration::micros(i + 1), p);
  }
  schedule_delivery(deliver_at, std::move(p));
}

void Network::schedule_delivery(SimTime at, net::Packet p) {
  const net::Ipv4 dst_addr = p.dst;
  sched_.at(at, [this, dst_addr, pkt = std::move(p)]() mutable {
    // Re-resolve: the host may have detached while the packet was in flight.
    Host* h = host_at(dst_addr);
    if (h == nullptr) return;
    ++rx_count_;
    h->deliver(pkt);
  });
}

// ---------------------------------------------------------------------------
// Host

Host::Host(Network& net, net::Ipv4 addr, std::string name)
    : net_(net), addr_(addr), name_(std::move(name)) {
  if (addr.is_unspecified()) throw std::invalid_argument("Host: unspecified address");
  net_.attach(*this);
}

Host::~Host() { net_.detach(*this); }

net::Port Host::alloc_ephemeral_port() {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const net::Port p = next_ephemeral_;
    next_ephemeral_ = (next_ephemeral_ >= 65535) ? 49152 : next_ephemeral_ + 1;
    // Skip ports with live connection state or bindings.
    bool used = udp_handlers_.count(p) > 0 || tcp_listeners_.count(p) > 0;
    if (!used) {
      const auto lo = conns_.lower_bound({p, net::Endpoint{}});
      used = lo != conns_.end() && lo->first.first == p;
    }
    if (!used) return p;
  }
  throw std::runtime_error("Host: ephemeral port space exhausted");
}

void Host::send_out(net::Packet p) {
  p.time = net_.now();  // captures get real timestamps even if dropped below
  if (tap_) tap_(p, /*outbound=*/true);
  if (filter_ && !filter_(p)) return;  // dropped by containment / rewritten
  net_.transmit(std::move(p));
}

void Host::send_raw(net::Packet p) {
  p.src = addr_;
  send_out(std::move(p));
}

// --- TCP --------------------------------------------------------------------

void Host::tcp_listen(net::Port port, AcceptHandler on_accept) {
  if (!on_accept) throw std::invalid_argument("tcp_listen: null handler");
  tcp_listeners_[port] = std::move(on_accept);
}

void Host::tcp_unlisten(net::Port port) { tcp_listeners_.erase(port); }

bool Host::tcp_listening(net::Port port) const { return tcp_listeners_.count(port) > 0; }

void Host::tcp_connect(net::Endpoint remote, ConnectHandler cb, Duration timeout) {
  if (!cb) throw std::invalid_argument("tcp_connect: null handler");
  const net::Port local_port = alloc_ephemeral_port();
  const ConnKey key{local_port, remote};
  const std::uint32_t iss = net_.rng()();
  auto conn = std::unique_ptr<TcpConn>(
      new TcpConn(*this, {addr_, local_port}, remote, /*inbound=*/false, iss));
  TcpConn* raw = conn.get();
  conns_.emplace(key, std::move(conn));

  PendingConnect pending;
  pending.cb = std::move(cb);
  pending.timeout_event = scheduler().after(
      timeout, [this, key, w = std::weak_ptr<const bool>(lifetime_)]() {
    if (w.expired()) return;
    const auto it = pending_connects_.find(key);
    if (it == pending_connects_.end()) return;
    ConnectHandler handler = std::move(it->second.cb);
    pending_connects_.erase(it);
    conns_.erase(key);  // abandon the half-open connection silently
    handler(ConnectOutcome::kTimeout, nullptr);
  });
  pending_connects_.emplace(key, std::move(pending));

  raw->emit(net::TcpFlags{.syn = true, .ack = false, .fin = false, .rst = false,
                          .psh = false});
}

void Host::close_all_connections() {
  for (auto& [key, conn] : conns_) {
    if (conn->established()) conn->close();
  }
}

void Host::abort_all_connections() {
  // reset() only schedules the map erase, so iterating while resetting is
  // safe.
  for (auto& [key, conn] : conns_) {
    if (conn->state() != TcpConn::State::kClosed) conn->reset();
  }
}

TcpConn* Host::find_conn(const ConnKey& key) {
  const auto it = conns_.find(key);
  return it == conns_.end() ? nullptr : it->second.get();
}

void Host::schedule_conn_erase(const ConnKey& key) {
  schedule_safe(Duration::seconds(60), [this, key]() {
    const auto it = conns_.find(key);
    if (it != conns_.end() && it->second->state() == TcpConn::State::kClosed) {
      conns_.erase(it);
    }
  });
}

void Host::handle_tcp(const net::Packet& p) {
  const ConnKey key{p.dst_port, {p.src, p.src_port}};
  TcpConn* conn = find_conn(key);

  if (conn == nullptr) {
    if (p.flags.rst) return;  // RST to nothing: ignore
    if (p.flags.syn && !p.flags.ack) {
      const auto lit = tcp_listeners_.find(p.dst_port);
      if (lit == tcp_listeners_.end()) {
        // Closed port: refuse with RST.
        net::Packet rst;
        rst.src = addr_;
        rst.dst = p.src;
        rst.proto = net::Protocol::kTcp;
        rst.src_port = p.dst_port;
        rst.dst_port = p.src_port;
        rst.flags.rst = true;
        rst.flags.ack = true;
        rst.ack_num = p.seq + 1;
        send_out(std::move(rst));
        return;
      }
      // Passive open.
      const std::uint32_t iss = net_.rng()();
      auto nc = std::unique_ptr<TcpConn>(new TcpConn(
          *this, {addr_, p.dst_port}, {p.src, p.src_port}, /*inbound=*/true, iss));
      TcpConn* raw = nc.get();
      conns_.emplace(key, std::move(nc));
      raw->rcv_next_ = p.seq + 1;
      raw->emit(net::TcpFlags{.syn = true, .ack = true, .fin = false, .rst = false,
                              .psh = false});
      return;
    }
    return;  // stray non-SYN segment: ignore
  }

  const TcpConn::State before = conn->state();
  conn->handle(p);
  const TcpConn::State after = conn->state();

  if (before == TcpConn::State::kSynSent) {
    const auto pit = pending_connects_.find(key);
    if (pit != pending_connects_.end()) {
      if (after == TcpConn::State::kEstablished) {
        ConnectHandler handler = std::move(pit->second.cb);
        scheduler().cancel(pit->second.timeout_event);
        pending_connects_.erase(pit);
        handler(ConnectOutcome::kConnected, conn);
      } else if (after == TcpConn::State::kClosed) {
        ConnectHandler handler = std::move(pit->second.cb);
        scheduler().cancel(pit->second.timeout_event);
        pending_connects_.erase(pit);
        handler(ConnectOutcome::kRefused, nullptr);
      }
    }
  } else if (before == TcpConn::State::kSynRcvd &&
             after == TcpConn::State::kEstablished) {
    const auto lit = tcp_listeners_.find(p.dst_port);
    if (lit != tcp_listeners_.end()) {
      lit->second(*conn);
    } else {
      // The service closed between SYN-ACK and the final ACK; refuse the
      // half-accepted connection so the peer sees a clean RST instead of a
      // silent, handler-less session.
      conn->reset();
    }
  }
}

// --- UDP / ICMP ---------------------------------------------------------------

void Host::udp_bind(net::Port port, UdpHandler h) {
  if (!h) throw std::invalid_argument("udp_bind: null handler");
  udp_handlers_[port] = std::move(h);
}

void Host::udp_unbind(net::Port port) { udp_handlers_.erase(port); }

void Host::udp_send(net::Endpoint remote, util::BytesView payload, net::Port src_port) {
  net::Packet p;
  p.src = addr_;
  p.dst = remote.ip;
  p.proto = net::Protocol::kUdp;
  p.src_port = src_port == 0 ? alloc_ephemeral_port() : src_port;
  p.dst_port = remote.port;
  p.payload.assign(payload.begin(), payload.end());
  send_out(std::move(p));
}

void Host::icmp_send(net::Ipv4 dst, std::uint8_t type, std::uint8_t code,
                     util::BytesView payload) {
  net::Packet p;
  p.src = addr_;
  p.dst = dst;
  p.proto = net::Protocol::kIcmp;
  p.icmp = {type, code};
  p.payload.assign(payload.begin(), payload.end());
  send_out(std::move(p));
}

void Host::deliver(net::Packet p) {
  if (rewriter_) rewriter_(p);
  if (tap_) tap_(p, /*outbound=*/false);
  switch (p.proto) {
    case net::Protocol::kTcp:
      handle_tcp(p);
      break;
    case net::Protocol::kUdp: {
      const auto it = udp_handlers_.find(p.dst_port);
      if (it != udp_handlers_.end()) {
        // Copy before invoking: handlers may unbind themselves (one-shot
        // transactions like DNS queries or DHT crawls), which would
        // otherwise destroy the callable mid-execution.
        const UdpHandler handler = it->second;
        handler(p);
      }
      break;  // unbound UDP port: silently dropped
    }
    case net::Protocol::kIcmp:
      if (icmp_handler_) icmp_handler_(p);
      break;
  }
}

}  // namespace malnet::sim
