// The simulated Internet: a registry of hosts, a latency model, and packet
// delivery through the event scheduler. This substitutes for the real
// Internet in the paper's pipeline (see DESIGN.md §1): everything above the
// packet boundary — sandbox capture, MITM redirection, probing, IDS — runs
// unchanged against it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/tcp.hpp"
#include "util/rng.hpp"

namespace malnet::sim {

class Host;

struct NetworkConfig {
  Duration min_latency = Duration::millis(5);
  Duration max_latency = Duration::millis(120);
  /// Independent per-packet drop probability. Zero by default: the study's
  /// findings are driven by application-level elusiveness, and lossless
  /// transport keeps protocol flows deterministic.
  double loss = 0.0;
  std::uint64_t seed = 0x6d616c6e6574ULL;  // "malnet"
};

/// Observes every packet the network accepts for transmission.
using GlobalTap = std::function<void(const net::Packet&)>;

/// Routing directives a fault hook returns for one packet in flight.
/// Default-constructed, the verdict is a no-op and delivery proceeds as if
/// no hook were installed.
struct FaultVerdict {
  /// Drop the packet in flight (counted as lost, like congestion loss).
  bool drop = false;
  /// Deliver this many extra copies shortly after the original.
  int duplicates = 0;
  /// Exempt this delivery from the per-pair FIFO clamp, letting it overtake
  /// packets already in flight on the same (src, dst) pair.
  bool reorder = false;
  /// Added to the pair latency (a transient latency spike).
  Duration extra_latency{};
};

/// Installed by the fault-injection layer (malnet::faultsim). Consulted for
/// every packet that survived the congestion-loss roll; may mutate the
/// packet (truncation, bit corruption) before returning its verdict. The
/// hook must be deterministic for the delivery schedule to stay a pure
/// function of the seed.
using FaultHook = std::function<FaultVerdict(net::Packet&)>;

class Network {
 public:
  Network(EventScheduler& sched, NetworkConfig cfg = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] EventScheduler& scheduler() { return sched_; }
  [[nodiscard]] SimTime now() const { return sched_.now(); }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Host registration (called from Host's constructor/destructor).
  void attach(Host& h);
  void detach(Host& h);
  [[nodiscard]] Host* host_at(net::Ipv4 addr) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Accepts a packet for transmission: stamps the send time, applies the
  /// deterministic pair latency, and schedules delivery. Packets to
  /// unregistered addresses vanish (dark IPv4 space).
  void transmit(net::Packet p);

  /// Deterministic one-way latency for the ordered pair (a, b).
  [[nodiscard]] Duration latency(net::Ipv4 a, net::Ipv4 b) const;

  void set_global_tap(GlobalTap tap) { tap_ = std::move(tap); }
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }
  void clear_fault_hook() { fault_hook_ = nullptr; }

  [[nodiscard]] std::uint64_t packets_transmitted() const { return tx_count_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return rx_count_; }
  [[nodiscard]] std::uint64_t packets_lost() const { return loss_count_; }
  /// Packets sent to unregistered (dark) address space.
  [[nodiscard]] std::uint64_t packets_dark() const { return dark_count_; }
  /// Network-level DNS query count (UDP datagrams to port 53).
  [[nodiscard]] std::uint64_t dns_queries() const { return dns_count_; }

 private:
  void schedule_delivery(SimTime at, net::Packet p);

  EventScheduler& sched_;
  NetworkConfig cfg_;
  util::Rng rng_;
  FaultHook fault_hook_;
  std::unordered_map<net::Ipv4, Host*> hosts_;
  // FIFO guarantee per ordered (src,dst) pair: the next delivery may never
  // precede the previous one.
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;
  GlobalTap tap_;
  std::uint64_t tx_count_ = 0;
  std::uint64_t rx_count_ = 0;
  std::uint64_t loss_count_ = 0;
  std::uint64_t dark_count_ = 0;
  std::uint64_t dns_count_ = 0;
};

/// Observes all packets entering or leaving one host (sandbox capture tap).
using HostTap = std::function<void(const net::Packet&, bool outbound)>;

/// May rewrite an outbound packet (DNAT-style redirection — CnCHunter's MITM
/// trick) or drop it (IDS containment). Return false to drop. Runs *after*
/// the host tap, so captures record what the host attempted to send.
using OutboundFilter = std::function<bool(net::Packet&)>;

/// May rewrite an inbound packet before connection dispatch — the reverse
/// half of the sandbox NAT (restores original peer addresses so the guest's
/// TCP state machine matches its own view of the flow).
using InboundRewriter = std::function<void(net::Packet&)>;

using UdpHandler = std::function<void(const net::Packet&)>;
using IcmpHandler = std::function<void(const net::Packet&)>;
using AcceptHandler = std::function<void(TcpConn&)>;
using ConnectHandler = std::function<void(ConnectOutcome, TcpConn*)>;

/// A network endpoint actor: owns its TCP connections, UDP bindings and the
/// interposition hooks the sandbox uses. Subclass or compose freely.
class Host {
 public:
  Host(Network& net, net::Ipv4 addr, std::string name = {});
  virtual ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] net::Ipv4 addr() const { return addr_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] EventScheduler& scheduler() { return net_.scheduler(); }
  [[nodiscard]] SimTime now() const { return net_.now(); }

  // --- TCP ---------------------------------------------------------------
  void tcp_listen(net::Port port, AcceptHandler on_accept);
  void tcp_unlisten(net::Port port);
  [[nodiscard]] bool tcp_listening(net::Port port) const;
  /// Active open. The handler fires exactly once with the outcome; on
  /// kConnected the TcpConn pointer is valid until its on_close fires.
  void tcp_connect(net::Endpoint remote, ConnectHandler cb,
                   Duration timeout = Duration::seconds(5));
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }
  /// Gracefully closes every established connection (used at sandbox-run
  /// teardown so peers see a FIN rather than a vanished host).
  void close_all_connections();
  /// Abortive teardown: RSTs every non-closed connection at once. Models a
  /// process crash — peers see a hard reset instead of a polite FIN.
  void abort_all_connections();

  // --- UDP ---------------------------------------------------------------
  void udp_bind(net::Port port, UdpHandler h);
  void udp_unbind(net::Port port);
  void udp_send(net::Endpoint remote, util::BytesView payload, net::Port src_port = 0);

  // --- ICMP --------------------------------------------------------------
  void icmp_send(net::Ipv4 dst, std::uint8_t type, std::uint8_t code,
                 util::BytesView payload = {});
  void set_icmp_handler(IcmpHandler h) { icmp_handler_ = std::move(h); }

  // --- Raw (scan-style traffic: SYN probes with no connection state) ------
  void send_raw(net::Packet p);

  // --- Interposition (sandbox) --------------------------------------------
  void set_outbound_filter(OutboundFilter f) { filter_ = std::move(f); }
  void clear_outbound_filter() { filter_ = nullptr; }
  void set_inbound_rewriter(InboundRewriter f) { rewriter_ = std::move(f); }
  void clear_inbound_rewriter() { rewriter_ = nullptr; }
  void set_tap(HostTap t) { tap_ = std::move(t); }
  void clear_tap() { tap_ = nullptr; }

  [[nodiscard]] net::Port alloc_ephemeral_port();

  /// Called by Network when a packet arrives for this host.
  void deliver(net::Packet p);

  /// Schedules `fn` after `d`, silently skipping it if this host has been
  /// destroyed by then. All actor-internal timers must use this (a plain
  /// scheduler().after() would capture a dangling `this` across host
  /// lifecycle boundaries, e.g. C2 server death).
  template <typename F>
  void schedule_safe(Duration d, F fn) {
    scheduler().after(d, [w = std::weak_ptr<const bool>(lifetime_),
                          fn = std::move(fn)]() mutable {
      if (w.expired()) return;
      fn();
    });
  }

  /// Expires when this host is destroyed. Lets code outside the host (e.g.
  /// the DNS stub resolver's retry timers) guard scheduler events that
  /// capture the host, the same way schedule_safe does internally.
  [[nodiscard]] std::weak_ptr<const bool> lifetime_guard() const { return lifetime_; }

 private:
  friend class TcpConn;

  struct PendingConnect {
    ConnectHandler cb;
    EventId timeout_event = 0;
  };

  using ConnKey = std::pair<net::Port, net::Endpoint>;  // (local port, remote)

  void send_out(net::Packet p);  // filter -> tap -> network
  void handle_tcp(const net::Packet& p);
  void schedule_conn_erase(const ConnKey& key);
  TcpConn* find_conn(const ConnKey& key);

  Network& net_;
  net::Ipv4 addr_;
  std::string name_;
  std::map<net::Port, AcceptHandler> tcp_listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConn>> conns_;
  std::map<ConnKey, PendingConnect> pending_connects_;
  std::map<net::Port, UdpHandler> udp_handlers_;
  IcmpHandler icmp_handler_;
  OutboundFilter filter_;
  InboundRewriter rewriter_;
  HostTap tap_;
  net::Port next_ephemeral_ = 49152;
  std::shared_ptr<const bool> lifetime_ = std::make_shared<const bool>(true);
};

}  // namespace malnet::sim
