// Simplified-but-stateful TCP connection machine.
//
// Models what a network-level malware study observes: the three-way
// handshake (the "handshaker" trick of §2.4 hinges on completing it),
// PSH/ACK data segments, FIN teardown and RST refusal. Retransmission and
// windowing are out of scope; the default network delivers in order and
// does not drop packets (server elusiveness is modelled at the application
// layer, where the paper observed it). Under fault injection
// (malnet::faultsim) segments can be duplicated or reordered, so receive
// processing validates sequence numbers: stale duplicates are dropped and
// a one-deep buffer absorbs single-segment reordering.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "util/bytes.hpp"
#include "util/simtime.hpp"

namespace malnet::sim {

class Host;

/// Result of a connect attempt, surfaced to the ConnectHandler.
enum class ConnectOutcome {
  kConnected,  // three-way handshake completed
  kRefused,    // peer answered RST (port closed / service declined)
  kTimeout,    // no answer at all (dark address or dead host)
};

[[nodiscard]] std::string to_string(ConnectOutcome o);

/// One TCP connection endpoint. Owned by its Host; user code holds a
/// non-owning pointer which stays valid until shortly after on_close fires.
class TcpConn {
 public:
  enum class State { kSynSent, kSynRcvd, kEstablished, kClosed };

  using DataHandler = std::function<void(TcpConn&, util::BytesView)>;
  using CloseHandler = std::function<void(TcpConn&)>;

  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Sends application data (PSH/ACK segment). No-op if not established.
  void send(util::BytesView data);
  void send(std::string_view data);

  /// Polite close: sends FIN. The peer's on_close fires when it arrives.
  void close();

  /// Abortive close: sends RST.
  void reset();

  void on_data(DataHandler h) { on_data_ = std::move(h); }
  void on_close(CloseHandler h) { on_close_ = std::move(h); }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] net::Endpoint local() const { return local_; }
  [[nodiscard]] net::Endpoint remote() const { return remote_; }
  /// True if this side accepted the connection (passive open).
  [[nodiscard]] bool inbound() const { return inbound_; }
  [[nodiscard]] util::SimTime opened_at() const { return opened_at_; }
  /// Total application bytes received on this connection.
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_rx_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_tx_; }

 private:
  friend class Host;

  TcpConn(Host& host, net::Endpoint local, net::Endpoint remote, bool inbound,
          std::uint32_t iss);

  void handle(const net::Packet& p);  // driven by Host::deliver
  void emit(net::TcpFlags flags, util::BytesView payload = {});
  void become_closed(bool notify);

  Host& host_;
  net::Endpoint local_;
  net::Endpoint remote_;
  bool inbound_;
  State state_;
  std::uint32_t snd_next_;
  std::uint32_t rcv_next_ = 0;
  /// One-deep reorder buffer: a sequence-consuming segment that arrived
  /// ahead of rcv_next_ waits here until the gap closes. Stale duplicates
  /// (seq behind rcv_next_) are dropped outright — see handle().
  std::optional<net::Packet> ooo_buffer_;
  bool fin_sent_ = false;
  std::uint64_t bytes_rx_ = 0;
  std::uint64_t bytes_tx_ = 0;
  util::SimTime opened_at_;
  DataHandler on_data_;
  CloseHandler on_close_;
};

}  // namespace malnet::sim
