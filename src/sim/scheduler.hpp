// Discrete-event scheduler: the single source of time for the simulation.
//
// Events are (time, sequence, callback) triples in a min-heap. Equal-time
// events fire in insertion order, which makes every run deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/simtime.hpp"

namespace malnet::sim {

using util::Duration;
using util::SimTime;

/// Token used to cancel a scheduled event.
using EventId = std::uint64_t;

/// Phase attribution tag (see obs/profile.hpp for the pipeline's mapping).
/// Events inherit the ambient tag at schedule time, and firing an event
/// restores its tag as ambient — so an asynchronous causality chain keeps
/// the tag of whatever phase started it.
using PhaseTag = std::uint8_t;
inline constexpr std::size_t kMaxPhaseTags = 8;

class EventScheduler {
 public:
  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId at(SimTime t, std::function<void()> fn);
  /// Schedules `fn` after `d` from now.
  EventId after(Duration d, std::function<void()> fn);

  /// Cancels a pending event. No-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // --- Phase attribution (observability) ---------------------------------
  [[nodiscard]] PhaseTag phase_tag() const { return current_tag_; }
  /// Sets the ambient tag stamped onto subsequently scheduled events.
  /// Out-of-range tags fold into tag 0 ("other").
  void set_phase_tag(PhaseTag tag) {
    current_tag_ = tag < kMaxPhaseTags ? tag : PhaseTag{0};
  }
  /// Per-event wall-clock attribution (two steady_clock reads per event);
  /// off by default — per-tag *event counts* are always maintained.
  void set_wall_profiling(bool on) { wall_profiling_ = on; }
  [[nodiscard]] bool wall_profiling() const { return wall_profiling_; }
  [[nodiscard]] std::uint64_t executed_by_tag(PhaseTag tag) const {
    return tag < kMaxPhaseTags ? executed_by_tag_[tag] : 0;
  }
  [[nodiscard]] std::uint64_t wall_ns_by_tag(PhaseTag tag) const {
    return tag < kMaxPhaseTags ? wall_ns_by_tag_[tag] : 0;
  }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
    PhaseTag tag;
    bool operator>(const Ev& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void prune();    // drops cancelled events from the head of the queue
  bool pop_one();  // fires the earliest event; false if queue empty

  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;  // tombstones
  SimTime now_{0};
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  PhaseTag current_tag_ = 0;
  bool wall_profiling_ = false;
  std::array<std::uint64_t, kMaxPhaseTags> executed_by_tag_{};
  std::array<std::uint64_t, kMaxPhaseTags> wall_ns_by_tag_{};
};

/// RAII ambient-tag switch: events scheduled inside the scope (and their
/// whole downstream chains) are attributed to `tag`.
class ScopedPhaseTag {
 public:
  ScopedPhaseTag(EventScheduler& sched, PhaseTag tag)
      : sched_(sched), prev_(sched.phase_tag()) {
    sched_.set_phase_tag(tag);
  }
  ~ScopedPhaseTag() { sched_.set_phase_tag(prev_); }
  ScopedPhaseTag(const ScopedPhaseTag&) = delete;
  ScopedPhaseTag& operator=(const ScopedPhaseTag&) = delete;

 private:
  EventScheduler& sched_;
  PhaseTag prev_;
};

}  // namespace malnet::sim
