// Discrete-event scheduler: the single source of time for the simulation.
//
// Events are (time, sequence, callback) triples in a min-heap. Equal-time
// events fire in insertion order, which makes every run deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/simtime.hpp"

namespace malnet::sim {

using util::Duration;
using util::SimTime;

/// Token used to cancel a scheduled event.
using EventId = std::uint64_t;

class EventScheduler {
 public:
  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId at(SimTime t, std::function<void()> fn);
  /// Schedules `fn` after `d` from now.
  EventId after(Duration d, std::function<void()> fn);

  /// Cancels a pending event. No-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Ev& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void prune();    // drops cancelled events from the head of the queue
  bool pop_one();  // fires the earliest event; false if queue empty

  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;  // tombstones
  SimTime now_{0};
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace malnet::sim
