// The MBF ("Malware Binary Format") container — our stand-in for the MIPS
// 32-bit ELF executables the paper collects. An MBF file has:
//
//   magic "\x7fMBF", u8 version, u8 arch, u8 endian
//   strings section  — family-distinctive marker strings (what YARA rules
//                      match on in real binaries) plus the C2 address,
//                      lightly obfuscated with the Mirai-style XOR table key
//   behavior section — the serialized BehaviorSpec the sandbox interprets
//   noise section    — rng filler so every sample hashes uniquely
//
// Static tooling (the YARA-lite labeler) sees only bytes; dynamic tooling
// (the sandbox) interprets the behaviour section; the pipeline itself never
// peeks at the spec — it learns everything from emitted traffic, exactly
// like the paper's binary-centric method.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mal/behavior.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace malnet::mal {

enum class Arch : std::uint8_t { kMips32 = 8, kArm32 = 40, kX86 = 3 };

inline constexpr std::uint8_t kMbfVersion = 1;
/// Mirai's string-table XOR key (0xDEADBEEF folded to one byte).
inline constexpr std::uint8_t kStringXorKey = 0x22;

struct MbfBinary {
  Arch arch = Arch::kMips32;
  std::vector<std::string> marker_strings;  // plain text, XOR-obfuscated on disk
  BehaviorSpec behavior;
};

/// Forges binary bytes for the given content. `noise_bytes` of rng filler
/// make each forged sample unique.
[[nodiscard]] util::Bytes forge(const MbfBinary& content, util::Rng& rng,
                                std::size_t noise_bytes = 512);

/// Parses a forged binary. Returns nullopt on bad magic/version or
/// malformed sections (the sandbox reports such samples as failed
/// activations, mirroring unparseable ELFs in the real pipeline).
[[nodiscard]] std::optional<MbfBinary> parse(util::BytesView binary);

/// The family marker strings embedded by the corpus forge — the byte
/// patterns our YARA-lite rules (labels.hpp) look for.
[[nodiscard]] const std::string& family_marker(proto::Family f);

/// A pseudo-SHA256: deterministic 64-hex-digit digest of the binary bytes
/// (FNV-based, not cryptographic — used only as a stable sample id).
[[nodiscard]] std::string digest(util::BytesView binary);

}  // namespace malnet::mal
