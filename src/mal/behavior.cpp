#include "mal/behavior.hpp"

namespace malnet::mal {

std::optional<std::string> BehaviorSpec::validate() const {
  if (is_p2p()) {
    if (p2p_peers.empty()) return "P2P family without bootstrap peers";
    if (node_id.size() != 20) return "P2P node id must be 20 bytes";
    return std::nullopt;
  }
  if (!c2_domain && !c2_ip) return "centralised family without a C2 address";
  if (c2_domain && c2_ip) return "both DNS and IP C2 set";
  if (c2_port == 0) return "C2 port is zero";
  for (const auto& s : scans) {
    if (s.target_count == 0) return "scan task with zero targets";
    if (s.pps <= 0) return "scan task with non-positive rate";
    if (s.vuln && !loader_name.empty() && downloader_host.empty()) {
      return "exploit scan without downloader host";
    }
  }
  return std::nullopt;
}

namespace {
constexpr std::uint8_t kHasDomain = 1;
constexpr std::uint8_t kHasIp = 2;
constexpr std::uint8_t kCheckInternet = 4;
constexpr std::uint8_t kAntiSandbox = 8;
constexpr std::uint8_t kHasFallback = 16;
constexpr std::uint8_t kHasTelemetry = 32;
// Appended by the profile subsystem. Default-valued specs never set these
// bits, so every pre-profile binary encodes (and decodes) byte-identically.
constexpr std::uint8_t kHasProfileName = 64;
constexpr std::uint8_t kHasExtraC2 = 128;
}  // namespace

util::Bytes encode_behavior(const BehaviorSpec& spec) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(spec.family));
  std::uint8_t flags = 0;
  if (spec.c2_domain) flags |= kHasDomain;
  if (spec.c2_ip) flags |= kHasIp;
  if (spec.check_internet) flags |= kCheckInternet;
  if (spec.anti_sandbox) flags |= kAntiSandbox;
  if (spec.c2_fallback_ip) flags |= kHasFallback;
  if (spec.telemetry_domain) flags |= kHasTelemetry;
  if (!spec.profile_name.empty()) flags |= kHasProfileName;
  if (!spec.extra_c2.empty()) flags |= kHasExtraC2;
  w.u8(flags);
  if (spec.c2_domain) w.lp16(*spec.c2_domain);
  if (spec.c2_ip) w.u32(spec.c2_ip->value);
  if (spec.c2_fallback_ip) {
    w.u32(spec.c2_fallback_ip->value);
    w.u16(spec.c2_fallback_port);
  }
  w.u16(spec.c2_port);
  if (spec.telemetry_domain) w.lp16(*spec.telemetry_domain);
  w.lp16(spec.bot_id);
  w.u32(spec.keepalive_s);

  w.u16(static_cast<std::uint16_t>(spec.scans.size()));
  for (const auto& s : spec.scans) {
    w.u16(s.port);
    w.u8(s.vuln ? 1 : 0);
    if (s.vuln) w.u8(static_cast<std::uint8_t>(*s.vuln));
    w.u32(s.target_count);
    w.u32(static_cast<std::uint32_t>(s.pps * 1000));  // milli-pps
  }
  w.lp16(spec.loader_name);
  w.lp16(spec.downloader_host);

  w.u16(static_cast<std::uint16_t>(spec.p2p_peers.size()));
  for (const auto& p : spec.p2p_peers) {
    w.u32(p.ip.value);
    w.u16(p.port);
  }
  w.lp16(spec.node_id);

  // Profile-era fields ride at the end, gated by their flag bits, so the
  // encoding of a spec that does not use them is unchanged.
  if (!spec.profile_name.empty()) w.lp16(spec.profile_name);
  if (!spec.extra_c2.empty()) {
    w.u16(static_cast<std::uint16_t>(spec.extra_c2.size()));
    for (const auto& e : spec.extra_c2) {
      w.u32(e.ip.value);
      w.u16(e.port);
    }
  }
  return w.take();
}

std::optional<BehaviorSpec> decode_behavior(util::BytesView wire) {
  try {
    util::ByteReader r(wire);
    BehaviorSpec spec;
    const std::uint8_t family = r.u8();
    if (family >= proto::kFamilyCount) return std::nullopt;
    spec.family = static_cast<proto::Family>(family);
    const std::uint8_t flags = r.u8();
    if (flags & kHasDomain) spec.c2_domain = util::to_string(r.lp16());
    if (flags & kHasIp) spec.c2_ip = net::Ipv4{r.u32()};
    if (flags & kHasFallback) {
      spec.c2_fallback_ip = net::Ipv4{r.u32()};
      spec.c2_fallback_port = r.u16();
    }
    spec.check_internet = flags & kCheckInternet;
    spec.anti_sandbox = flags & kAntiSandbox;
    spec.c2_port = r.u16();
    if (flags & kHasTelemetry) spec.telemetry_domain = util::to_string(r.lp16());
    spec.bot_id = util::to_string(r.lp16());
    spec.keepalive_s = r.u32();

    const std::uint16_t n_scans = r.u16();
    for (std::uint16_t i = 0; i < n_scans; ++i) {
      ScanTask task;
      task.port = r.u16();
      if (r.u8() != 0) {
        const std::uint8_t vuln = r.u8();
        if (vuln >= vulndb::kVulnCount) return std::nullopt;
        task.vuln = static_cast<vulndb::VulnId>(vuln);
      }
      task.target_count = r.u32();
      task.pps = static_cast<double>(r.u32()) / 1000.0;
      spec.scans.push_back(task);
    }
    spec.loader_name = util::to_string(r.lp16());
    spec.downloader_host = util::to_string(r.lp16());

    const std::uint16_t n_peers = r.u16();
    for (std::uint16_t i = 0; i < n_peers; ++i) {
      const net::Ipv4 ip{r.u32()};
      const net::Port port = r.u16();
      spec.p2p_peers.push_back({ip, port});
    }
    spec.node_id = util::to_string(r.lp16());
    if (flags & kHasProfileName) {
      spec.profile_name = util::to_string(r.lp16());
      if (spec.profile_name.empty()) return std::nullopt;
    }
    if (flags & kHasExtraC2) {
      const std::uint16_t n_extra = r.u16();
      if (n_extra == 0) return std::nullopt;
      for (std::uint16_t i = 0; i < n_extra; ++i) {
        const net::Ipv4 ip{r.u32()};
        const net::Port port = r.u16();
        spec.extra_c2.push_back({ip, port});
      }
    }
    if (!r.done()) return std::nullopt;
    return spec;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

}  // namespace malnet::mal
