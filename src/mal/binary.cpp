#include "mal/binary.hpp"

#include <stdexcept>

namespace malnet::mal {

namespace {

constexpr std::uint8_t kMagic[4] = {0x7F, 'M', 'B', 'F'};

util::Bytes xor_obfuscate(std::string_view s) {
  util::Bytes out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<std::uint8_t>(c) ^ kStringXorKey);
  return out;
}

std::string xor_deobfuscate(util::BytesView b) {
  std::string out;
  out.reserve(b.size());
  for (auto v : b) out.push_back(static_cast<char>(v ^ kStringXorKey));
  return out;
}

}  // namespace

const std::string& family_marker(proto::Family f) {
  static const std::string kMirai = "/bin/busybox MIRAI";
  static const std::string kGafgyt = "/bin/busybox GAFGYT";
  static const std::string kTsunami = "NOTICE %s :TSUNAMI";
  static const std::string kDaddyl33t = "daddyl33t-gang";
  static const std::string kMozi = "Mozi.m+Mozi.a";
  static const std::string kHajime = "hajime-atk.module";
  static const std::string kVpnFilter = "vpnfilter/stage2";
  switch (f) {
    case proto::Family::kMirai: return kMirai;
    case proto::Family::kGafgyt: return kGafgyt;
    case proto::Family::kTsunami: return kTsunami;
    case proto::Family::kDaddyl33t: return kDaddyl33t;
    case proto::Family::kMozi: return kMozi;
    case proto::Family::kHajime: return kHajime;
    case proto::Family::kVpnFilter: return kVpnFilter;
  }
  throw std::logic_error("family_marker: bad family");
}

util::Bytes forge(const MbfBinary& content, util::Rng& rng, std::size_t noise_bytes) {
  util::ByteWriter w;
  w.raw(util::BytesView{kMagic, 4});
  w.u8(kMbfVersion);
  w.u8(static_cast<std::uint8_t>(content.arch));
  w.u8(1);  // big-endian flag, like most MIPS32 IoT targets

  // Strings section.
  w.u16(static_cast<std::uint16_t>(content.marker_strings.size()));
  for (const auto& s : content.marker_strings) {
    w.lp16(util::BytesView{xor_obfuscate(s)});
  }

  // Behaviour section (length-prefixed).
  const util::Bytes behavior = encode_behavior(content.behavior);
  if (behavior.size() > 0xFFFF) throw std::length_error("forge: behaviour too large");
  w.lp16(util::BytesView{behavior});

  // Noise section: random filler, varies hash and size per sample.
  const std::size_t n = noise_bytes + static_cast<std::size_t>(rng.uniform(0, 256));
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u8(static_cast<std::uint8_t>(rng.uniform(0, 255)));
  }
  return w.take();
}

std::optional<MbfBinary> parse(util::BytesView binary) {
  try {
    util::ByteReader r(binary);
    const util::Bytes magic = r.raw(4);
    for (int i = 0; i < 4; ++i) {
      if (magic[static_cast<std::size_t>(i)] != kMagic[i]) return std::nullopt;
    }
    if (r.u8() != kMbfVersion) return std::nullopt;
    MbfBinary out;
    out.arch = static_cast<Arch>(r.u8());
    r.skip(1);  // endianness

    const std::uint16_t n_strings = r.u16();
    for (std::uint16_t i = 0; i < n_strings; ++i) {
      out.marker_strings.push_back(xor_deobfuscate(r.lp16()));
    }
    auto behavior = decode_behavior(r.lp16());
    if (!behavior) return std::nullopt;
    out.behavior = std::move(*behavior);
    return out;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

std::string digest(util::BytesView binary) {
  // Four FNV-1a lanes with different offsets -> 256 bits of stable id.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (int lane = 0; lane < 4; ++lane) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (0x9E3779B97F4A7C15ULL * (lane + 1));
    for (auto b : binary) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    for (int i = 15; i >= 0; --i) {
      out.push_back(kHex[(h >> (i * 4)) & 0xF]);
    }
  }
  return out;
}

}  // namespace malnet::mal
