#include "mal/labels.hpp"

#include "mal/binary.hpp"

namespace malnet::mal {

const std::vector<YaraRule>& yara_rules() {
  static const std::vector<YaraRule> kRules = [] {
    std::vector<YaraRule> rules;
    const auto add = [&](std::string name, proto::Family f) {
      rules.push_back(YaraRule{std::move(name), family_marker(f), f});
    };
    add("Mirai_Botnet_Generic", proto::Family::kMirai);
    add("Gafgyt_Bashlite", proto::Family::kGafgyt);
    add("Tsunami_Kaiten_IRC", proto::Family::kTsunami);
    add("Daddyl33t_QBot_IoT", proto::Family::kDaddyl33t);
    add("Mozi_P2P_Botnet", proto::Family::kMozi);
    add("Hajime_P2P", proto::Family::kHajime);
    add("VPNFilter_Stage2", proto::Family::kVpnFilter);
    return rules;
  }();
  return kRules;
}

std::vector<const YaraRule*> yara_scan(util::BytesView binary) {
  // De-obfuscate the whole image with the known XOR key, then substring
  // match. (Real rules match the XORed bytes directly; equivalent.)
  util::Bytes plain;
  plain.reserve(binary.size());
  for (auto b : binary) plain.push_back(b ^ kStringXorKey);

  std::vector<const YaraRule*> hits;
  for (const auto& rule : yara_rules()) {
    if (util::contains(plain, rule.pattern)) hits.push_back(&rule);
  }
  return hits;
}

std::optional<proto::Family> yara_label(util::BytesView binary) {
  const auto hits = yara_scan(binary);
  if (hits.empty()) return std::nullopt;
  return hits.front()->family;
}

proto::Family avclass_label(proto::Family ground_truth) {
  if (proto::is_p2p(ground_truth)) return proto::Family::kMirai;  // §2.2 failure
  return ground_truth;
}

proto::Family combined_label(util::BytesView binary, proto::Family ground_truth) {
  const auto yara = yara_label(binary);
  return yara ? *yara : avclass_label(ground_truth);
}

}  // namespace malnet::mal
