// Malware behaviour specification.
//
// Real IoT malware is a MIPS ELF whose *network-relevant* behaviour the
// paper observes through a sandbox. Our synthetic stand-in (DESIGN.md §1)
// encodes that behaviour explicitly: a BehaviorSpec describes how the
// sample rendezvouses with its C2, how it scans and which exploits it
// delivers, and how it reacts to C2 commands. The sandbox in emu/ is an
// interpreter for this spec — the network traffic it produces is what the
// MalNet pipeline actually analyses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "proto/family.hpp"
#include "util/bytes.hpp"
#include "vulndb/vulndb.hpp"

namespace malnet::mal {

/// One scanning campaign: sweep random addresses on `port` at `pps`
/// packets/second, delivering `vuln`'s exploit to hosts that answer.
/// A task without a vulnerability is a telnet-style credential sweep.
struct ScanTask {
  net::Port port = 23;
  std::optional<vulndb::VulnId> vuln;
  std::uint32_t target_count = 64;  // distinct addresses to probe
  double pps = 10.0;
};

struct BehaviorSpec {
  proto::Family family = proto::Family::kMirai;

  // --- C2 rendezvous -------------------------------------------------------
  // Exactly one of c2_domain / c2_ip for centralised families; P2P families
  // use peers instead.
  std::optional<std::string> c2_domain;
  std::optional<net::Ipv4> c2_ip;
  /// Failover C2 tried when the primary is unreachable; common in Mirai
  /// forks.
  std::optional<net::Ipv4> c2_fallback_ip;
  net::Port c2_port = 23;
  net::Port c2_fallback_port = 0;  // used with c2_fallback_ip (0 = c2_port)
  /// Additional failover C2s tried after c2_fallback_ip, in order. Only
  /// profiles with a "fallback" section populate this; builtin-family
  /// samples leave it empty (and encode identically to before it existed).
  std::vector<net::Endpoint> extra_c2;
  /// Name of the registry profile driving this sample's C2 dialect. Empty
  /// means the family's active profile — every builtin-family sample.
  std::string profile_name;
  std::string bot_id = "mips.bot";
  std::uint32_t keepalive_s = 60;
  /// Checks connectivity (DNS+HTTP) before contacting the C2.
  bool check_internet = false;
  /// Benign-looking periodic HTTP beacon (an IP-echo / update check).
  /// Beacons like a C2 but is not one — the false-positive source behind
  /// CnCHunter's ~90% C2-detection precision [17].
  std::optional<std::string> telemetry_domain;
  /// Aborts when the connectivity check fails (sandbox evasion). InetSim
  /// defeats this, which is exactly why the paper deploys it (§2.6a).
  bool anti_sandbox = false;

  // --- Proliferation -------------------------------------------------------
  std::vector<ScanTask> scans;
  std::string loader_name;       // filename fetched by exploited victims
  std::string downloader_host;   // dotted quad; often the C2 itself (§3.1)

  // --- P2P -----------------------------------------------------------------
  std::vector<net::Endpoint> p2p_peers;
  std::string node_id;  // 20-byte DHT id

  [[nodiscard]] bool is_p2p() const { return proto::is_p2p(family); }

  /// Structural sanity: centralised families need a C2 address; P2P
  /// families need peers. Returns a description of the first violation.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Serializes a BehaviorSpec into the MBF behaviour section.
[[nodiscard]] util::Bytes encode_behavior(const BehaviorSpec& spec);

/// Parses; nullopt on malformed input.
[[nodiscard]] std::optional<BehaviorSpec> decode_behavior(util::BytesView wire);

}  // namespace malnet::mal
