// Family labelling: the two static labelers the paper combines (§2.2).
//
//  * YARA-lite — crowd-sourced-style byte-pattern rules keyed on the family
//    marker strings embedded in binaries.
//  * AVClass-lite — an AV-label aggregator model. The paper notes AVClass2
//    "seems to be often unreliable for MIPS binaries. For example, all the
//    instances of the Mozi family ... are wrongly classified as Mirai."
//    We reproduce that failure mode faithfully.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "proto/family.hpp"
#include "util/bytes.hpp"

namespace malnet::mal {

struct YaraRule {
  std::string name;          // e.g. "Mirai_Botnet_Generic"
  std::string pattern;       // byte pattern matched against the binary
  proto::Family family;      // family the rule attributes
};

/// The built-in crowd-sourced rule set (one per family).
[[nodiscard]] const std::vector<YaraRule>& yara_rules();

/// Scans obfuscated binary bytes: rules are applied against the
/// de-obfuscated string view (XOR key is public knowledge, as with Mirai's
/// leaked table key). Returns all matching rules.
[[nodiscard]] std::vector<const YaraRule*> yara_scan(util::BytesView binary);

/// Best-effort family from YARA: the first match, or nullopt.
[[nodiscard]] std::optional<proto::Family> yara_label(util::BytesView binary);

/// AVClass-lite: aggregates AV vendor labels. Faithfully wrong for P2P
/// MIPS binaries — Mozi and Hajime collapse into Mirai (§2.2).
[[nodiscard]] proto::Family avclass_label(proto::Family ground_truth);

/// Combined labeller used by the pipeline: YARA wins when it fires, else
/// AVClass. (This is why the pipeline can still filter P2P samples.)
[[nodiscard]] proto::Family combined_label(util::BytesView binary,
                                           proto::Family ground_truth);

}  // namespace malnet::mal
